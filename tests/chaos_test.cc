// Chaos lane: randomized (but seeded, fully deterministic) fault schedules
// swept across every registered fault site while concurrent BatchSearch
// traffic runs through admission control. The contract under chaos:
//
//   1. no crash, hang, or deadlock — the batch always returns;
//   2. every failed item carries a *typed* status from the small set of
//      codes the fault schedule can legally produce — never a mystery
//      kInternal from a swallowed invariant, never a success with bogus
//      answers;
//   3. every successful item is byte-identical to the unfaulted baseline
//      (scores compared at full bit precision via %a);
//   4. once every fault is disarmed, the system is fully healthy again —
//      degradation is never sticky.

#include <gtest/gtest.h>

#include <cstdio>
#include <iterator>
#include <random>
#include <string>
#include <vector>

#include "src/common/fault_injector.h"
#include "src/core/engine.h"
#include "src/data/car_gen.h"
#include "src/exec/admission_controller.h"
#include "src/exec/profile_cache.h"
#include "src/index/collection.h"
#include "src/index/persist.h"

namespace pimento {
namespace {

using core::BatchOptions;
using core::BatchResult;
using core::RankedAnswer;
using core::SearchEngine;
using core::SearchRequest;
using core::SearchResult;

constexpr const char* kCarQuery =
    "//car[./description[ftcontains(., \"good condition\")] and "
    "./price < 5000]";

constexpr const char* kKorProfile = R"(
profile kors
rank K,V,S
kor pi1: tag=car prefer ftcontains("best bid")
kor pi2: tag=car prefer ftcontains("NYC")
)";

constexpr const char* kSrProfile = R"(
profile chaos
rank K,V,S
sr p1 priority 1: if //car/description[ftcontains(., "good condition")] then add ftcontains(description, "american")
vor pi1: tag=car prefer color = "red"
)";

// Every fault site reachable from the BatchSearch path.
constexpr const char* kBatchSites[] = {
    "exec.worker.dispatch", "cache.profile.fill", "store.profile.put",
    "obs.trace.span",       "exec.scan.next",
};

// The only codes a chaos schedule may legally surface to a caller.
bool IsAllowedFailure(StatusCode code) {
  switch (code) {
    case StatusCode::kUnavailable:        // admission shed / breaker open
    case StatusCode::kResourceExhausted:  // injected alloc failure
    case StatusCode::kIoError:            // injected I/O fault
    case StatusCode::kInternal:           // injected exception, caught
    case StatusCode::kDeadlineExceeded:   // injected deadline
    case StatusCode::kCorruptIndex:       // injected corruption
      return true;
    default:
      return false;
  }
}

// Byte-exact rendering of one outcome (scores at full bit precision).
std::string Canonical(const Status& status, const SearchResult& result) {
  std::string out = status.ok() ? "OK\n" : status.ToString() + "\n";
  if (!status.ok()) return out;
  out += result.encoded_query + "\n" + result.plan_description + "\n";
  char buf[64];
  for (const RankedAnswer& a : result.answers) {
    std::snprintf(buf, sizeof(buf), "#%d n%d s=%a k=%a\n", a.rank, a.node,
                  a.s, a.k);
    out += buf;
  }
  return out;
}

std::vector<SearchRequest> ChaosRequests() {
  std::vector<SearchRequest> requests;
  for (int i = 0; i < 3; ++i) {
    requests.push_back(SearchRequest::Text(kCarQuery));
    requests.push_back(SearchRequest::Text(kCarQuery, kSrProfile));
    requests.push_back(SearchRequest::Text("//car[./price < 3000]",
                                           kKorProfile));
    SearchRequest traced = SearchRequest::Text("//car[./price < 2000]");
    traced.trace.enabled = true;  // keeps obs.trace.span in the sweep
    traced.client_id = "tracer";
    requests.push_back(traced);
  }
  return requests;
}

// One randomized schedule: each site has a chance of being armed with a
// random kind, code, skip window, shot count, and periodic (`every`) phase.
void ArmRandomSchedule(std::mt19937& rng) {
  std::uniform_int_distribution<int> pct(0, 99);
  std::uniform_int_distribution<int> small(0, 3);
  constexpr StatusCode kCodes[] = {
      StatusCode::kIoError,          StatusCode::kResourceExhausted,
      StatusCode::kInternal,         StatusCode::kDeadlineExceeded,
      StatusCode::kCorruptIndex,     StatusCode::kUnavailable,
  };
  for (const char* site : kBatchSites) {
    if (pct(rng) >= 70) continue;  // ~70% of sites armed per round
    FaultInjector::FaultSpec spec;
    const int kind = pct(rng);
    if (kind < 50) {
      spec.kind = FaultInjector::Kind::kError;
      spec.code = kCodes[static_cast<size_t>(pct(rng)) % std::size(kCodes)];
    } else if (kind < 70) {
      spec.kind = FaultInjector::Kind::kSlow;
      spec.delay_ms = 1 + small(rng);
    } else if (kind < 85) {
      spec.kind = FaultInjector::Kind::kAllocFail;
    } else {
      spec.kind = FaultInjector::Kind::kThrow;
    }
    spec.skip = small(rng);
    spec.times = small(rng) == 0 ? -1 : 1 + small(rng);
    spec.every = small(rng);  // 0/1 = every traversal, else periodic
    FaultInjector::Instance().Arm(site, spec);
  }
}

TEST(ChaosTest, RandomFaultSchedulesNeverBreakTheBatchContract) {
  data::CarGenOptions gen;
  gen.num_cars = 40;
  SearchEngine engine(index::Collection::Build(data::GenerateCarDealer(gen)));
  engine.EnableAdmissionControl();  // default thresholds: no degradation
                                    // at this batch size, only typed sheds
  const std::string store_path = ::testing::TempDir() + "/chaos_store.bin";
  std::remove(store_path.c_str());
  ASSERT_TRUE(engine.SetProfileStore(store_path).ok());

  const std::vector<SearchRequest> requests = ChaosRequests();

  // Unfaulted baseline, per item, sequentially.
  std::vector<std::string> expected;
  for (const SearchRequest& req : requests) {
    auto result = engine.Execute(req);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    expected.push_back(Canonical(Status::OK(), *result));
  }

  for (int round = 0; round < 5; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    // Cold profile cache every round so cache.profile.fill and
    // store.profile.put are traversed again.
    engine.profile_cache().Clear();
    std::mt19937 rng(static_cast<uint32_t>(round * 7919 + 13));
    ArmRandomSchedule(rng);

    BatchOptions options;
    options.num_workers = 1 + round % 4;
    BatchResult batch = engine.BatchSearch(requests, options);
    FaultInjector::Instance().DisarmAll();

    ASSERT_EQ(batch.items.size(), requests.size());
    for (size_t i = 0; i < batch.items.size(); ++i) {
      const core::BatchItem& item = batch.items[i];
      if (item.status.ok()) {
        // Success under chaos must be byte-identical to no chaos at all.
        EXPECT_EQ(Canonical(item.status, item.result), expected[i])
            << "item " << i;
      } else {
        EXPECT_TRUE(IsAllowedFailure(item.status.code()))
            << "item " << i << " surfaced untyped failure: "
            << item.status.ToString();
      }
    }
  }

  // Faults gone: the very next batch is fully healthy — every item
  // succeeds and matches the baseline. Degradation is not sticky.
  engine.profile_cache().Clear();
  BatchOptions options;
  options.num_workers = 2;
  BatchResult batch = engine.BatchSearch(requests, options);
  for (size_t i = 0; i < batch.items.size(); ++i) {
    ASSERT_TRUE(batch.items[i].status.ok())
        << "item " << i << ": " << batch.items[i].status.ToString();
    EXPECT_EQ(Canonical(batch.items[i].status, batch.items[i].result),
              expected[i])
        << "item " << i;
  }
  EXPECT_EQ(engine.Health().degrade_tier, "normal");
}

TEST(ChaosTest, PersistChaosNeverCorruptsTheLastGoodImage) {
  data::CarGenOptions gen;
  gen.num_cars = 8;
  index::Collection collection =
      index::Collection::Build(data::GenerateCarDealer(gen));
  const std::string path = ::testing::TempDir() + "/chaos_persist.idx";
  std::remove(path.c_str());

  // One clean image on disk first.
  ASSERT_TRUE(index::SaveCollection(collection, path).ok());
  ASSERT_TRUE(index::LoadCollection(path).ok());

  constexpr const char* kSaveSites[] = {
      "persist.save.open", "persist.save.write", "persist.save.rename"};
  constexpr const char* kLoadSites[] = {"persist.load.open",
                                        "persist.load.read"};
  RetryPolicy policy(/*attempts=*/2, 0.1, 1.0, 3.0);

  for (int round = 0; round < 8; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    std::mt19937 rng(static_cast<uint32_t>(round * 104729 + 7));
    std::uniform_int_distribution<int> pct(0, 99);
    std::uniform_int_distribution<int> small(0, 3);
    for (const char* site : kSaveSites) {
      if (pct(rng) >= 60) continue;
      FaultInjector::FaultSpec spec;
      spec.kind =
          pct(rng) < 80 ? FaultInjector::Kind::kError : FaultInjector::Kind::kSlow;
      spec.code = StatusCode::kIoError;
      spec.delay_ms = 1;
      spec.skip = small(rng);
      spec.times = small(rng) == 0 ? -1 : 1 + small(rng);
      FaultInjector::Instance().Arm(site, spec);
    }
    Status saved = index::SaveCollectionWithRetry(collection, path, policy);
    EXPECT_TRUE(saved.ok() || saved.code() == StatusCode::kIoError)
        << saved.ToString();
    FaultInjector::Instance().DisarmAll();

    // Atomic tmp+rename: whether or not the save succeeded, the image at
    // `path` is a complete, loadable one — never a torn write.
    auto loaded = index::LoadCollection(path);
    ASSERT_TRUE(loaded.ok()) << "a failed save corrupted the live image: "
                             << loaded.status().ToString();

    // Load-path faults surface typed and leave the file untouched.
    for (const char* site : kLoadSites) {
      if (pct(rng) >= 50) continue;
      FaultInjector::FaultSpec spec;
      spec.kind = FaultInjector::Kind::kError;
      spec.code = StatusCode::kIoError;
      spec.times = 1 + small(rng);
      FaultInjector::Instance().Arm(site, spec);
    }
    auto faulted_load = index::LoadCollection(path);
    EXPECT_TRUE(faulted_load.ok() ||
                faulted_load.status().code() == StatusCode::kIoError ||
                faulted_load.status().code() == StatusCode::kCorruptIndex)
        << faulted_load.status().ToString();
    FaultInjector::Instance().DisarmAll();
  }

  // Healthy again end-to-end.
  ASSERT_TRUE(index::SaveCollection(collection, path).ok());
  EXPECT_TRUE(index::LoadCollection(path).ok());
}

}  // namespace
}  // namespace pimento
