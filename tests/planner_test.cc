#include <gtest/gtest.h>

#include "src/algebra/topk_prune.h"
#include "src/data/car_gen.h"
#include "src/plan/planner.h"
#include "src/profile/rule_parser.h"
#include "src/tpq/tpq_parser.h"

namespace pimento::plan {
namespace {

tpq::Tpq Q(const char* text) {
  auto q = tpq::ParseTpq(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

struct Fixture {
  Fixture()
      : collection(index::Collection::Build(
            data::GenerateCarDealer({.num_cars = 30, .seed = 9}))),
        scorer(&collection) {}

  StatusOr<algebra::Plan> Build(const char* query,
                                const std::vector<profile::Vor>& vors,
                                const std::vector<profile::Kor>& kors,
                                PlannerOptions options = {}) {
    return BuildPlan(collection, scorer, Q(query), vors, kors, options);
  }

  index::Collection collection;
  score::Scorer scorer;
};

profile::Kor K(const char* text) {
  auto k = profile::ParseKor(text);
  EXPECT_TRUE(k.ok()) << k.status().ToString();
  return *k;
}

profile::Vor V(const char* text) {
  auto v = profile::ParseVor(text);
  EXPECT_TRUE(v.ok()) << v.status().ToString();
  return *v;
}

TEST(NavPathTest, DistinguishedNodeHasEmptyPath) {
  tpq::Tpq q = Q("//car[./price < 100]");
  EXPECT_TRUE(NavPathTo(q, q.distinguished()).empty());
}

TEST(NavPathTest, DownPath) {
  tpq::Tpq q = Q("//car[./owner/email]");
  int email = q.FindByTag("email");
  auto path = NavPathTo(q, email);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0].kind, algebra::NavStep::Kind::kDownChild);
  EXPECT_EQ(path[0].tag, "owner");
  EXPECT_EQ(path[1].tag, "email");
}

TEST(NavPathTest, UpThenDownThroughLca) {
  // //article[.//au]//abs — from abs up to article (ad edge), down to au.
  tpq::Tpq q = Q("//article[ftcontains(.//au, \"x\")]//abs");
  int au = q.FindByTag("au");
  auto path = NavPathTo(q, au);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0].kind, algebra::NavStep::Kind::kUpDescendant);
  EXPECT_EQ(path[0].tag, "article");
  EXPECT_EQ(path[1].kind, algebra::NavStep::Kind::kDownDescendant);
  EXPECT_EQ(path[1].tag, "au");
}

TEST(PlannerTest, RejectsBadInputs) {
  Fixture f;
  EXPECT_FALSE(f.Build("//car", {}, {}, {.k = 0}).ok());
  tpq::Tpq empty;
  EXPECT_FALSE(
      BuildPlan(f.collection, f.scorer, empty, {}, {}, {}).ok());
  EXPECT_FALSE(f.Build("//*", {}, {}).ok());
}

std::vector<std::string> OpNames(const algebra::Plan& plan) {
  std::vector<std::string> names;
  for (size_t i = 0; i < plan.size(); ++i) names.push_back(plan.op(i)->Name());
  return names;
}

int CountPrunes(const algebra::Plan& plan) {
  int n = 0;
  for (size_t i = 0; i < plan.size(); ++i) {
    if (dynamic_cast<algebra::TopkPruneOp*>(plan.op(i)) != nullptr) ++n;
  }
  return n;
}

TEST(PlannerTest, NaiveHasSingleFinalPrune) {
  Fixture f;
  auto plan = f.Build("//car[ftcontains(., \"good condition\")]", {},
                      {K("kor a: tag=car prefer ftcontains(\"NYC\")")},
                      {.strategy = Strategy::kNaive});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(CountPrunes(*plan), 1);
}

TEST(PlannerTest, InterleavePrunesAfterEachKor) {
  Fixture f;
  std::vector<profile::Kor> kors = {
      K("kor a: tag=car prefer ftcontains(\"NYC\")"),
      K("kor b: tag=car prefer ftcontains(\"best bid\")")};
  auto plan = f.Build("//car", {}, kors, {.strategy = Strategy::kInterleave});
  ASSERT_TRUE(plan.ok());
  // One prune per kor + the final cut.
  EXPECT_EQ(CountPrunes(*plan), 3);
  auto names = OpNames(*plan);
  // Each interleaved prune directly follows its kor.
  for (size_t i = 0; i + 1 < names.size(); ++i) {
    if (names[i].substr(0, 4) == "kor(") {
      EXPECT_EQ(names[i + 1].substr(0, 9), "topkPrune") << names[i + 1];
    }
  }
}

TEST(PlannerTest, InterleaveSortedAddsSorts) {
  Fixture f;
  std::vector<profile::Kor> kors = {
      K("kor a: tag=car prefer ftcontains(\"NYC\")")};
  auto plan =
      f.Build("//car", {}, kors, {.strategy = Strategy::kInterleaveSorted});
  ASSERT_TRUE(plan.ok());
  int sorts = 0;
  for (const std::string& n : OpNames(*plan)) {
    if (n.substr(0, 4) == "sort") ++sorts;
  }
  EXPECT_EQ(sorts, 2);  // one interleaved + the terminal sort
}

TEST(PlannerTest, PushPlacesPruneBeforeEachKor) {
  Fixture f;
  std::vector<profile::Kor> kors = {
      K("kor a: tag=car prefer ftcontains(\"NYC\")"),
      K("kor b: tag=car prefer ftcontains(\"best bid\")")};
  auto plan = f.Build("//car", {}, kors, {.strategy = Strategy::kPush});
  ASSERT_TRUE(plan.ok());
  // One before each kor, one after the last kor, one final cut.
  EXPECT_EQ(CountPrunes(*plan), 4);
  auto names = OpNames(*plan);
  for (size_t i = 1; i < names.size(); ++i) {
    if (names[i].substr(0, 4) == "kor(") {
      EXPECT_EQ(names[i - 1].substr(0, 9), "topkPrune") << names[i - 1];
    }
  }
}

TEST(PlannerTest, KorScoreBoundsAreSuffixSums) {
  Fixture f;
  std::vector<profile::Kor> kors = {
      K("kor a: tag=car prefer ftcontains(\"NYC\")"),
      K("kor b: tag=car prefer ftcontains(\"best bid\")")};
  auto plan = f.Build("//car", {}, kors, {.strategy = Strategy::kPush,
                                          .kor_order = KorOrder::kAsGiven});
  ASSERT_TRUE(plan.ok());
  std::vector<algebra::TopkPruneOp*> prunes;
  for (size_t i = 0; i < plan->size(); ++i) {
    if (auto* p = dynamic_cast<algebra::TopkPruneOp*>(plan->op(i))) {
      prunes.push_back(p);
    }
  }
  ASSERT_EQ(prunes.size(), 4u);
  // First prune sees both kors downstream; second sees one; the post-kor
  // prune and the final cut see none.
  double bound_a = f.scorer.MaxScore(f.collection.MakePhrase("NYC"));
  double bound_b = f.scorer.MaxScore(f.collection.MakePhrase("best bid"));
  EXPECT_DOUBLE_EQ(prunes[0]->options().kor_score_bound, bound_a + bound_b);
  EXPECT_DOUBLE_EQ(prunes[1]->options().kor_score_bound, bound_b);
  EXPECT_DOUBLE_EQ(prunes[2]->options().kor_score_bound, 0.0);
  EXPECT_DOUBLE_EQ(prunes[3]->options().kor_score_bound, 0.0);
}

TEST(PlannerTest, KorOrderHighestFirst) {
  Fixture f;
  // "NYC" is rarer than "car" in the generated data, so it has the higher
  // max score; highest-first must place it before a frequent keyword.
  std::vector<profile::Kor> kors = {
      K("kor common: tag=car prefer ftcontains(\"sale\")"),
      K("kor rare: tag=car prefer ftcontains(\"best bid\")")};
  double s_common = f.scorer.MaxScore(f.collection.MakePhrase("sale"));
  double s_rare = f.scorer.MaxScore(f.collection.MakePhrase("best bid"));
  ASSERT_GT(s_rare, s_common);
  auto plan =
      f.Build("//car", {}, kors,
              {.strategy = Strategy::kNaive,
               .kor_order = KorOrder::kHighestScoreFirst});
  ASSERT_TRUE(plan.ok());
  auto names = OpNames(*plan);
  int rare_idx = -1;
  int common_idx = -1;
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == "kor(rare)") rare_idx = static_cast<int>(i);
    if (names[i] == "kor(common)") common_idx = static_cast<int>(i);
  }
  ASSERT_GE(rare_idx, 0);
  ASSERT_GE(common_idx, 0);
  EXPECT_LT(rare_idx, common_idx);
}

TEST(PlannerTest, InapplicableKorSkipped) {
  Fixture f;
  std::vector<profile::Kor> kors = {
      K("kor boat: tag=boat prefer ftcontains(\"NYC\")")};
  auto plan = f.Build("//car", {}, kors, {.strategy = Strategy::kNaive});
  ASSERT_TRUE(plan.ok());
  for (const std::string& n : OpNames(*plan)) {
    EXPECT_EQ(n.find("kor("), std::string::npos) << n;
  }
}

TEST(PlannerTest, VorOpsPrecedeFirstPrune) {
  Fixture f;
  auto plan = f.Build("//car", {V("vor red: tag=car prefer color = \"red\"")},
                      {K("kor a: tag=car prefer ftcontains(\"NYC\")")},
                      {.strategy = Strategy::kPush});
  ASSERT_TRUE(plan.ok());
  auto names = OpNames(*plan);
  int vor_idx = -1;
  int first_prune = -1;
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i].substr(0, 4) == "vor(" && vor_idx < 0) {
      vor_idx = static_cast<int>(i);
    }
    if (names[i].substr(0, 9) == "topkPrune" && first_prune < 0) {
      first_prune = static_cast<int>(i);
    }
  }
  ASSERT_GE(vor_idx, 0);
  ASSERT_GE(first_prune, 0);
  EXPECT_LT(vor_idx, first_prune);
}

TEST(PlannerTest, VksOrderGetsVksPrunes) {
  Fixture f;
  std::vector<profile::Kor> kors = {
      K("kor a: tag=car prefer ftcontains(\"NYC\")")};
  auto plan = f.Build("//car", {}, kors,
                      {.strategy = Strategy::kPush,
                       .rank_order = profile::RankOrder::kVKS});
  ASSERT_TRUE(plan.ok());
  // Push placements also apply under V,K,S, with the V-first algorithm.
  EXPECT_EQ(CountPrunes(*plan), 3);
  bool has_vks = false;
  for (const std::string& n : OpNames(*plan)) {
    if (n.find("[V,K,S]") != std::string::npos) has_vks = true;
  }
  EXPECT_TRUE(has_vks);
}

TEST(PlannerTest, SOrderStillPrunesWithAlgorithm1) {
  Fixture f;
  auto plan = f.Build("//car[ftcontains(., \"good condition\")]", {}, {},
                      {.strategy = Strategy::kPush,
                       .rank_order = profile::RankOrder::kS});
  ASSERT_TRUE(plan.ok());
  bool has_s_prune = false;
  for (const std::string& n : OpNames(*plan)) {
    if (n.find("topkPrune[S]") != std::string::npos) has_s_prune = true;
  }
  EXPECT_TRUE(has_s_prune);
}

TEST(PlannerTest, OptionalPredicatesBecomeOptionalOps) {
  Fixture f;
  auto plan = f.Build("//car[ftcontains(., \"nyc\")? and ./mileage?]", {}, {},
                      {.strategy = Strategy::kNaive});
  ASSERT_TRUE(plan.ok());
  auto names = OpNames(*plan);
  bool has_optional_ft = false;
  bool has_optional_exists = false;
  for (const std::string& n : names) {
    if (n.substr(0, 12) == "ftcontains?(") has_optional_ft = true;
    if (n.substr(0, 8) == "exists?(") has_optional_exists = true;
  }
  EXPECT_TRUE(has_optional_ft);
  EXPECT_TRUE(has_optional_exists);
}

TEST(PlannerTest, ExecutesAndHonorsK) {
  Fixture f;
  auto plan = f.Build("//car", {}, {}, {.k = 4});
  ASSERT_TRUE(plan.ok());
  auto answers = plan->Execute();
  EXPECT_EQ(answers.size(), 4u);
}

TEST(PlannerTest, PlanResetReExecutes) {
  Fixture f;
  auto plan = f.Build("//car[ftcontains(., \"good condition\")]", {}, {},
                      {.k = 3});
  ASSERT_TRUE(plan.ok());
  auto first = plan->Execute();
  plan->Reset();
  auto second = plan->Execute();
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].node, second[i].node);
  }
}

}  // namespace
}  // namespace pimento::plan
