// The static analysis layer: the plan verifier must reject hand-built
// known-bad plans with the documented diagnostic code (and a witness), must
// pass every plan the seed planner produces (all scan modes x rank orders x
// strategies, on two corpora), and the profile linter must pin the paper's
// golden diagnostics (Example 5 ambiguity, SR conflict cycles, shadowed
// rules). The engine-level gate (SearchRequest::verify_plan) is exercised
// end to end.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/algebra/operators.h"
#include "src/algebra/plan.h"
#include "src/algebra/topk_prune.h"
#include "src/analysis/plan_verifier.h"
#include "src/analysis/profile_linter.h"
#include "src/core/engine.h"
#include "src/data/car_gen.h"
#include "src/data/xmark_gen.h"
#include "src/obs/trace.h"
#include "src/obs/trace_op.h"
#include "src/plan/planner.h"
#include "src/profile/flock.h"
#include "src/score/scorer.h"
#include "src/xml/parser.h"
#include "src/profile/rule_parser.h"
#include "src/tpq/tpq_parser.h"

namespace pimento::analysis {
namespace {

using algebra::Answer;
using algebra::ExistsOp;
using algebra::MaterializedOp;
using algebra::NavPath;
using algebra::Plan;
using algebra::PruneAlg;
using algebra::SortOp;
using algebra::TopkPruneOp;
using algebra::TopkPruneOptions;
using algebra::VorOp;

// ---------------------------------------------------------------------------
// Hand-built known-bad plans. MaterializedOp sources keep the fixtures
// collection-free: the verifier never executes, so only declared metadata
// matters.
// ---------------------------------------------------------------------------

std::vector<Answer> TwoAnswers(size_t vor_width) {
  std::vector<Answer> answers(2);
  answers[0].node = 1;
  answers[1].node = 2;
  for (Answer& a : answers) a.vor.resize(vor_width);
  return answers;
}

profile::Vor ColorVor(const std::string& name) {
  profile::Vor v;
  v.name = name;
  v.kind = profile::VorKind::kEqConst;
  v.tag = "car";
  v.attr = "color";
  v.const_value = "red";
  return v;
}

const Diagnostic* ExpectCode(const Diagnostics& diags, const char* code) {
  const Diagnostic* d = FindCode(diags, code);
  EXPECT_NE(d, nullptr) << "expected " << code << " in:\n"
                        << RenderDiagnostics(diags);
  return d;
}

TEST(PlanVerifierBadPlans, UnderstatedScoreboundIsPV201) {
  // A non-final Algorithm 1 prune claims query_score_bound = 0 while an
  // optional exists-join downstream can still add 0.5 to S: answers within
  // 0.5 of the k-th snapshot get wrongly pruned.
  Plan plan;
  auto* rank = plan.MakeRankContext({}, profile::RankOrder::kS);
  plan.Add(std::make_unique<MaterializedOp>(TwoAnswers(0)));
  TopkPruneOptions prune;
  prune.k = 1;
  prune.alg = PruneAlg::kAlg1;
  prune.query_score_bound = 0.0;  // the lie: downstream adds up to 0.5
  plan.Add(std::make_unique<TopkPruneOp>(rank, prune));
  plan.Add(std::make_unique<ExistsOp>(algebra::ExecContext{}, NavPath{},
                                      /*required=*/false, /*bonus=*/0.5));
  plan.Add(std::make_unique<SortOp>(rank, SortOp::Param::kByRank));
  TopkPruneOptions final_cut;
  final_cut.k = 1;
  final_cut.sorted_input = true;
  final_cut.final_cut = true;
  plan.Add(std::make_unique<TopkPruneOp>(rank, final_cut));

  Diagnostics diags = VerifyPlan(plan);
  EXPECT_TRUE(HasErrors(diags));
  const Diagnostic* d = ExpectCode(diags, "PV201");
  ASSERT_NE(d, nullptr);
  // The witness names the pruning operator and the understating bound.
  EXPECT_NE(d->witness.find("topkPrune"), std::string::npos) << d->witness;
  EXPECT_NE(d->message.find("0.5"), std::string::npos) << d->message;
}

TEST(PlanVerifierBadPlans, ScoreContributorBelowFinalCutIsPV304) {
  // An optional S contributor *after* the final cut: the emitted "top k"
  // was ranked before part of the score existed.
  Plan plan;
  auto* rank = plan.MakeRankContext({}, profile::RankOrder::kS);
  plan.Add(std::make_unique<MaterializedOp>(TwoAnswers(0)));
  plan.Add(std::make_unique<SortOp>(rank, SortOp::Param::kByRank));
  TopkPruneOptions final_cut;
  final_cut.k = 1;
  final_cut.sorted_input = true;
  final_cut.final_cut = true;
  plan.Add(std::make_unique<TopkPruneOp>(rank, final_cut));
  plan.Add(std::make_unique<ExistsOp>(algebra::ExecContext{}, NavPath{},
                                      /*required=*/false, /*bonus=*/0.5));

  Diagnostics diags = VerifyPlan(plan);
  EXPECT_TRUE(HasErrors(diags));
  ExpectCode(diags, "PV304");
}

TEST(PlanVerifierBadPlans, VorSchemaBreaks) {
  // (a) A vor operator annotating rule index 2 of a 1-rule relation
  // (PV110); (b) the rank sort consuming V with rule 0 never annotated
  // upstream (PV112).
  Plan plan;
  auto* rank =
      plan.MakeRankContext({ColorVor("v0")}, profile::RankOrder::kKVS);
  plan.Add(std::make_unique<MaterializedOp>(TwoAnswers(1)));
  plan.Add(std::make_unique<VorOp>(algebra::ExecContext{}, ColorVor("v2"),
                                   /*rule_index=*/2));
  plan.Add(std::make_unique<SortOp>(rank, SortOp::Param::kByRank));
  TopkPruneOptions final_cut;
  final_cut.k = 1;
  final_cut.sorted_input = true;
  final_cut.final_cut = true;
  plan.Add(std::make_unique<TopkPruneOp>(rank, final_cut));

  Diagnostics diags = VerifyPlan(plan);
  EXPECT_TRUE(HasErrors(diags));
  ExpectCode(diags, "PV110");
  const Diagnostic* missing = ExpectCode(diags, "PV112");
  ASSERT_NE(missing, nullptr);
  // The witness lists the unannotated rule by name.
  EXPECT_NE(missing->message.find("v0"), std::string::npos)
      << missing->message;
}

TEST(PlanVerifierBadPlans, MisattachedTraceDecoratorIsPV401) {
  // A trace decorator wrapping the *leaf* while chained after the sort: its
  // forwarded bounds/spans describe a different operator than the stream it
  // actually relays.
  Plan plan;
  auto* rank = plan.MakeRankContext({}, profile::RankOrder::kS);
  obs::TraceContext trace(true);
  algebra::Operator* leaf =
      plan.Add(std::make_unique<MaterializedOp>(TwoAnswers(0)));
  plan.Add(std::make_unique<SortOp>(rank, SortOp::Param::kByRank));
  plan.Add(std::make_unique<obs::TraceOp>(&trace, leaf));  // wrong target
  TopkPruneOptions final_cut;
  final_cut.k = 1;
  final_cut.sorted_input = true;
  final_cut.final_cut = true;
  plan.Add(std::make_unique<TopkPruneOp>(rank, final_cut));

  Diagnostics diags = VerifyPlan(plan);
  EXPECT_TRUE(HasErrors(diags));
  const Diagnostic* d = ExpectCode(diags, "PV401");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->witness.find("sort"), std::string::npos) << d->witness;
}

TEST(PlanVerifierBadPlans, UnsortedFinalCutIsPV206) {
  // A final cut not fed by the terminal rank sort: the first k of an
  // unsorted stream is not the top k.
  Plan plan;
  auto* rank = plan.MakeRankContext({}, profile::RankOrder::kS);
  plan.Add(std::make_unique<MaterializedOp>(TwoAnswers(0)));
  TopkPruneOptions final_cut;
  final_cut.k = 1;
  final_cut.sorted_input = true;
  final_cut.final_cut = true;
  plan.Add(std::make_unique<TopkPruneOp>(rank, final_cut));

  Diagnostics diags = VerifyPlan(plan);
  EXPECT_TRUE(HasErrors(diags));
  ExpectCode(diags, "PV206");
}

TEST(PlanVerifierBadPlans, EmptyPlanIsPV101) {
  Plan plan;
  Diagnostics diags = VerifyPlan(plan);
  EXPECT_TRUE(HasErrors(diags));
  ExpectCode(diags, "PV101");
}

// ---------------------------------------------------------------------------
// Score-floor wiring diagnostics (PV208-PV211). These fixtures need a real
// collection: IndexScanOp resolves its anchor cursor at construction.
// ---------------------------------------------------------------------------

class FloorWiringPlans : public ::testing::Test {
 protected:
  FloorWiringPlans()
      : coll_(index::Collection::Build(*xml::ParseXml(
            "<r><car color=\"red\">w NYC</car><car>w w</car></r>"))),
        scorer_(&coll_) {
    ctx_.collection = &coll_;
    ctx_.scorer = &scorer_;
  }

  std::unique_ptr<algebra::IndexScanOp> MakeScan(size_t vor_count) {
    std::vector<algebra::IndexScanOp::RequiredPhrase> req;
    req.push_back({coll_.MakePhrase("w"), 1.0});
    return std::make_unique<algebra::IndexScanOp>(ctx_, "car", vor_count,
                                                  std::move(req));
  }

  std::unique_ptr<algebra::KorOp> MakeKor() {
    profile::Kor kor;
    kor.name = "k1";
    kor.tag = "car";
    kor.keyword = "NYC";
    return std::make_unique<algebra::KorOp>(ctx_, kor,
                                            coll_.MakePhrase("NYC"));
  }

  // Terminal sort + final cut shared by every fixture.
  void AddTail(Plan* plan, algebra::RankContext* rank) {
    plan->Add(std::make_unique<SortOp>(rank, SortOp::Param::kByRank));
    TopkPruneOptions final_cut;
    final_cut.k = 1;
    final_cut.sorted_input = true;
    final_cut.final_cut = true;
    plan->Add(std::make_unique<TopkPruneOp>(rank, final_cut));
  }

  index::Collection coll_;
  score::Scorer scorer_;
  algebra::ExecContext ctx_;
};

TEST_F(FloorWiringPlans, FloorTargetingFinalCutIsPV209) {
  Plan plan;
  auto* rank = plan.MakeRankContext({}, profile::RankOrder::kS);
  auto scan = MakeScan(0);
  auto* scan_ptr = scan.get();
  plan.Add(std::move(scan));
  plan.Add(std::make_unique<SortOp>(rank, SortOp::Param::kByRank));
  TopkPruneOptions final_cut;
  final_cut.k = 1;
  final_cut.sorted_input = true;
  final_cut.final_cut = true;
  auto prune = std::make_unique<TopkPruneOp>(rank, final_cut);
  // The final cut never republishes a floor (it is the cut): wiring the
  // scan to it leaves the scan skipping on a stale threshold.
  scan_ptr->set_score_floor(prune.get());
  plan.Add(std::move(prune));

  Diagnostics diags = VerifyPlan(plan);
  EXPECT_TRUE(HasErrors(diags));
  ExpectCode(diags, "PV209");
}

TEST_F(FloorWiringPlans, KBlindFloorUnderKvsWithKorIsPV208) {
  // Rank K,V,S with a kor in the plan, but the floor publisher is a plain
  // Algorithm 1 prune: its (S, node) floor ignores K, so a low-S answer
  // that wins on K can be skipped — unsound.
  Plan plan;
  auto* rank = plan.MakeRankContext({}, profile::RankOrder::kKVS);
  auto scan = MakeScan(0);
  auto* scan_ptr = scan.get();
  plan.Add(std::move(scan));
  plan.Add(MakeKor());
  TopkPruneOptions po;
  po.k = 1;
  po.alg = PruneAlg::kAlg1;
  auto prune = std::make_unique<TopkPruneOp>(rank, po);
  scan_ptr->set_score_floor(prune.get());
  plan.Add(std::move(prune));
  AddTail(&plan, rank);

  Diagnostics diags = VerifyPlan(plan);
  EXPECT_TRUE(HasErrors(diags));
  ExpectCode(diags, "PV208");
}

TEST_F(FloorWiringPlans, KAwareFloorWithoutAttainableBoundIsPV210) {
  // An Algorithm 3 publisher is sound under K,V,S — but with the default
  // (infinite) total_k_bound its validity condition can never hold: the
  // wiring is dead weight, worth a warning, not an error.
  Plan plan;
  auto* rank = plan.MakeRankContext({}, profile::RankOrder::kKVS);
  auto scan = MakeScan(0);
  auto* scan_ptr = scan.get();
  plan.Add(std::move(scan));
  plan.Add(MakeKor());
  TopkPruneOptions po;
  po.k = 1;
  po.alg = PruneAlg::kAlg3;
  auto prune = std::make_unique<TopkPruneOp>(rank, po);
  scan_ptr->set_score_floor(prune.get());
  plan.Add(std::move(prune));
  AddTail(&plan, rank);

  Diagnostics diags = VerifyPlan(plan);
  EXPECT_FALSE(HasErrors(diags)) << RenderErrors(diags);
  ExpectCode(diags, "PV210");
}

TEST_F(FloorWiringPlans, KAwareFloorWithAttainableBoundVerifiesClean) {
  Plan plan;
  auto* rank = plan.MakeRankContext({}, profile::RankOrder::kKVS);
  auto scan = MakeScan(0);
  auto* scan_ptr = scan.get();
  plan.Add(std::move(scan));
  plan.Add(MakeKor());
  TopkPruneOptions po;
  po.k = 1;
  po.alg = PruneAlg::kAlg3;
  auto prune = std::make_unique<TopkPruneOp>(rank, po);
  prune->set_total_k_bound(0.5);
  scan_ptr->set_score_floor(prune.get());
  plan.Add(std::move(prune));
  AddTail(&plan, rank);

  Diagnostics diags = VerifyPlan(plan);
  EXPECT_FALSE(HasErrors(diags)) << RenderErrors(diags);
  EXPECT_EQ(FindCode(diags, "PV208"), nullptr);
  EXPECT_EQ(FindCode(diags, "PV209"), nullptr);
  EXPECT_EQ(FindCode(diags, "PV210"), nullptr);
  EXPECT_EQ(FindCode(diags, "PV211"), nullptr);
}

TEST_F(FloorWiringPlans, VAwareFloorWithCompareVorIsPV211) {
  // A numeric-compare VOR has no attainable best value, so an Algorithm 2
  // publisher's V-validity check can never pass: dead wiring again.
  profile::Vor cmp;
  cmp.name = "v0";
  cmp.kind = profile::VorKind::kCompare;
  cmp.tag = "car";
  cmp.attr = "price";
  Plan plan;
  auto* rank = plan.MakeRankContext({cmp}, profile::RankOrder::kKVS);
  auto scan = MakeScan(1);
  auto* scan_ptr = scan.get();
  plan.Add(std::move(scan));
  plan.Add(std::make_unique<VorOp>(ctx_, cmp, /*rule_index=*/0));
  TopkPruneOptions po;
  po.k = 1;
  po.alg = PruneAlg::kAlg2;
  auto prune = std::make_unique<TopkPruneOp>(rank, po);
  scan_ptr->set_score_floor(prune.get());
  plan.Add(std::move(prune));
  AddTail(&plan, rank);

  Diagnostics diags = VerifyPlan(plan);
  EXPECT_FALSE(HasErrors(diags)) << RenderErrors(diags);
  ExpectCode(diags, "PV211");
}

// ---------------------------------------------------------------------------
// Known-good plans: everything the seed planner emits must verify clean.
// ---------------------------------------------------------------------------

class PlannerPlansVerifyClean : public ::testing::Test {
 protected:
  static std::string ProfileText(const char* rank_line) {
    std::string out = "profile t\n";
    out += rank_line;
    out += "\n";
    out += "kor k1: tag=car prefer ftcontains(\"NYC\")\n";
    out += "kor k2: tag=car prefer ftcontains(\"low mileage\")\n";
    out += "vor v1: tag=car prefer color = \"red\"\n";
    out += "sr s1 priority 1: if //car then delete "
           "ftcontains(description, \"clean\")\n";
    return out;
  }

  void VerifyAllModes(const core::SearchEngine& engine,
                      const std::string& query) {
    static const char* kRankLines[] = {"rank K,V,S", "rank V,K,S", "rank S"};
    static const plan::Strategy kStrategies[] = {
        plan::Strategy::kNaive, plan::Strategy::kInterleave,
        plan::Strategy::kInterleaveSorted, plan::Strategy::kPush};
    static const plan::ScanMode kScanModes[] = {plan::ScanMode::kAuto,
                                                plan::ScanMode::kTagScan,
                                                plan::ScanMode::kPostingsScan};
    for (const char* rank_line : kRankLines) {
      auto profile = profile::ParseProfile(ProfileText(rank_line));
      ASSERT_TRUE(profile.ok()) << profile.status().ToString();
      auto parsed = tpq::ParseTpq(query);
      ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
      auto flock =
          profile::BuildFlock(*parsed, profile->scoping_rules, nullptr);
      ASSERT_TRUE(flock.ok()) << flock.status().ToString();
      EXPECT_FALSE(HasErrors(VerifyFlock(*flock)))
          << RenderErrors(VerifyFlock(*flock));
      for (plan::Strategy strategy : kStrategies) {
        for (plan::ScanMode scan_mode : kScanModes) {
          plan::PlannerOptions popts;
          popts.k = 5;
          popts.strategy = strategy;
          popts.rank_order = profile->rank_order;
          popts.scan_mode = scan_mode;
          auto built = plan::BuildPlan(engine.collection(), engine.scorer(),
                                       flock->encoded, profile->vors,
                                       profile->kors, popts);
          ASSERT_TRUE(built.ok()) << built.status().ToString();
          Diagnostics diags = VerifyPlan(*built);
          EXPECT_FALSE(HasErrors(diags))
              << rank_line << " strategy=" << plan::StrategyName(strategy)
              << " scan_mode=" << static_cast<int>(scan_mode) << "\n"
              << RenderErrors(diags) << "\nplan: " << built->Describe();
        }
      }
    }
  }
};

TEST_F(PlannerPlansVerifyClean, CarDealerCorpus) {
  core::SearchEngine engine(index::Collection::Build(
      data::GenerateCarDealer({.num_cars = 80})));
  VerifyAllModes(engine, "//car[ftcontains(., \"excellent\")]");
  VerifyAllModes(engine,
                 "//car[ftcontains(./description, \"low mileage\")]");
}

TEST_F(PlannerPlansVerifyClean, XmarkCorpus) {
  core::SearchEngine engine(index::Collection::Build(
      data::GenerateXmark({.target_bytes = 96u << 10})));
  VerifyAllModes(engine, "//item[ftcontains(., \"gold\")]");
}

// ---------------------------------------------------------------------------
// Engine gate: SearchRequest::verify_plan runs the verifier per request.
// ---------------------------------------------------------------------------

TEST(EngineVerifyGate, CleanRequestReportsNothingAndSucceeds) {
  core::SearchEngine engine(index::Collection::Build(
      data::GenerateCarDealer({.num_cars = 40})));
  core::SearchRequest request = core::SearchRequest::Text(
      "//car[ftcontains(., \"NYC\")]",
      "profile t\nrank K,V,S\n"
      "kor k1: tag=car prefer ftcontains(\"NYC\")\n"
      "vor v1: tag=car prefer color = \"red\"\n");
  request.verify_plan = true;
  auto result = engine.Execute(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->verifier_report.empty()) << result->verifier_report;
  // Winnow mode compiles a second plan; it must pass the gate too.
  request.mode = core::SearchMode::kWinnow;
  auto winnow = engine.Execute(request);
  ASSERT_TRUE(winnow.ok()) << winnow.status().ToString();
  EXPECT_TRUE(winnow->verifier_report.empty()) << winnow->verifier_report;
}

// ---------------------------------------------------------------------------
// Profile linter goldens.
// ---------------------------------------------------------------------------

TEST(ProfileLinter, PaperExample5AlternatingCycleIsPL201) {
  // The paper's Example 5: pi1 (red first) and pi2 (lower mileage first)
  // with equal priorities admit an alternating cycle — ambiguous ranking.
  auto profile = profile::ParseProfile(
      "profile p\n"
      "vor pi1: tag=car prefer color = \"red\"\n"
      "vor pi2: tag=car prefer lower mileage\n");
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  Diagnostics diags = LintProfile(*profile);
  EXPECT_TRUE(HasErrors(diags));
  const Diagnostic* d = ExpectCode(diags, "PL201");
  ASSERT_NE(d, nullptr);
  // The witness is the alternating cycle, naming both rules.
  EXPECT_NE(d->witness.find("pi1"), std::string::npos) << d->witness;
  EXPECT_NE(d->witness.find("pi2"), std::string::npos) << d->witness;
}

TEST(ProfileLinter, Example5WithPrioritiesIsResolvedInfoPL202) {
  auto profile = profile::ParseProfile(
      "profile p\n"
      "vor pi1 priority 1: tag=car prefer color = \"red\"\n"
      "vor pi2 priority 2: tag=car prefer lower mileage\n");
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  Diagnostics diags = LintProfile(*profile);
  EXPECT_FALSE(HasErrors(diags)) << RenderErrors(diags);
  ExpectCode(diags, "PL202");
}

TEST(ProfileLinter, SrConflictCycleWithoutPrioritiesIsPL103) {
  // r1 deletes the keyword r2's condition tests, and vice versa: a query
  // triggering both can be rewritten in two orders with different results,
  // and equal priorities cannot break the tie.
  auto profile = profile::ParseProfile(
      "profile p\n"
      "sr r1: if //car[ftcontains(., \"luxury\")] then delete "
      "ftcontains(car, \"budget\")\n"
      "sr r2: if //car[ftcontains(., \"budget\")] then delete "
      "ftcontains(car, \"luxury\")\n");
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  Diagnostics diags = LintProfile(*profile);
  EXPECT_TRUE(HasErrors(diags));
  const Diagnostic* d = ExpectCode(diags, "PL103");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->witness.find("r1"), std::string::npos) << d->witness;
  EXPECT_NE(d->witness.find("r2"), std::string::npos) << d->witness;
}

TEST(ProfileLinter, SrConflictCycleWithPrioritiesIsPL104) {
  auto profile = profile::ParseProfile(
      "profile p\n"
      "sr r1 priority 1: if //car[ftcontains(., \"luxury\")] then delete "
      "ftcontains(car, \"budget\")\n"
      "sr r2 priority 2: if //car[ftcontains(., \"budget\")] then delete "
      "ftcontains(car, \"luxury\")\n");
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  Diagnostics diags = LintProfile(*profile);
  EXPECT_FALSE(HasErrors(diags)) << RenderErrors(diags);
  ExpectCode(diags, "PL104");
}

TEST(ProfileLinter, ShadowedScopingRuleIsPL101) {
  // s1 (condition //car, any car query) subsumes s2 (only car queries that
  // also mention "cheap") and performs the same delete: s2 is dead.
  auto profile = profile::ParseProfile(
      "profile p\n"
      "sr s1 priority 1: if //car then delete ftcontains(car, \"old\")\n"
      "sr s2 priority 2: if //car[ftcontains(., \"cheap\")] then delete "
      "ftcontains(car, \"old\")\n");
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  Diagnostics diags = LintProfile(*profile);
  const Diagnostic* d = ExpectCode(diags, "PL101");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_NE(d->message.find("s2"), std::string::npos) << d->message;
  EXPECT_NE(d->message.find("s1"), std::string::npos) << d->message;
}

TEST(ProfileLinter, CyclicPrefRelIsPL203) {
  auto profile = profile::ParseProfile(
      "profile p\n"
      "vor v1: tag=car prefer color order \"red\" > \"black\" > \"red\"\n");
  if (!profile.ok()) {
    // The parser may itself reject the cyclic order; either layer may own
    // this diagnostic, but one of them must.
    SUCCEED() << "parser rejected cyclic prefRel: "
              << profile.status().ToString();
    return;
  }
  Diagnostics diags = LintProfile(*profile);
  EXPECT_TRUE(HasErrors(diags));
  const Diagnostic* d = ExpectCode(diags, "PL203");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->witness.find("red"), std::string::npos) << d->witness;
}

TEST(ProfileLinter, DuplicateKorIsPL207) {
  auto profile = profile::ParseProfile(
      "profile p\n"
      "kor k1: tag=car prefer ftcontains(\"NYC\")\n"
      "kor k2: tag=car prefer ftcontains(\"NYC\")\n");
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  Diagnostics diags = LintProfile(*profile);
  const Diagnostic* d = ExpectCode(diags, "PL207");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("k2"), std::string::npos) << d->message;
}

TEST(ProfileLinter, CleanProfileHasNoFindings) {
  auto profile = profile::ParseProfile(
      "profile p\n"
      "rank K,V,S\n"
      "sr s1 priority 1: if //car[ftcontains(., \"family\")] then add "
      "ftcontains(car, \"safe\")\n"
      "vor pi1 priority 1: tag=car prefer color = \"red\"\n"
      "kor pi4: tag=car prefer ftcontains(\"best bid\")\n");
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  Diagnostics diags = LintProfile(*profile);
  EXPECT_TRUE(diags.empty()) << RenderDiagnostics(diags);
}

}  // namespace
}  // namespace pimento::analysis
