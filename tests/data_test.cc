#include <gtest/gtest.h>

#include "src/data/car_gen.h"
#include "src/data/inex_gen.h"
#include "src/data/xmark_gen.h"
#include "src/index/collection.h"
#include "src/xml/parser.h"

namespace pimento::data {
namespace {

TEST(CarGenTest, Deterministic) {
  CarGenOptions opts;
  opts.num_cars = 20;
  std::string a = CarDealerXml(opts);
  std::string b = CarDealerXml(opts);
  EXPECT_EQ(a, b);
  opts.seed = 43;
  EXPECT_NE(CarDealerXml(opts), a);
}

TEST(CarGenTest, RequestedCarCount) {
  CarGenOptions opts;
  opts.num_cars = 25;
  xml::Document doc = GenerateCarDealer(opts);
  index::Collection coll = index::Collection::Build(std::move(doc));
  EXPECT_EQ(coll.tags().Count("car"), 25u);
}

TEST(CarGenTest, Figure1CarsPresent) {
  index::Collection coll =
      index::Collection::Build(GenerateCarDealer({.num_cars = 5}));
  // Node 1 is the first Fig. 1 car with "best bid" and "NYC" in its
  // description; node ids are deterministic (root=0, first car=1).
  index::Phrase best_bid = coll.MakePhrase("best bid");
  index::Phrase nyc = coll.MakePhrase("NYC");
  EXPECT_GT(coll.CountOccurrences(1, best_bid), 0);
  EXPECT_GT(coll.CountOccurrences(1, nyc), 0);
}

TEST(CarGenTest, GeneratedXmlParses) {
  std::string xml_text = CarDealerXml({.num_cars = 10});
  auto doc = xml::ParseXml(xml_text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
}

TEST(CarGenTest, CarsHaveExpectedFields) {
  index::Collection coll =
      index::Collection::Build(GenerateCarDealer({.num_cars = 15}));
  for (xml::NodeId car : coll.tags().Elements("car")) {
    EXPECT_TRUE(coll.AttrNumeric(car, "price").has_value()) << car;
    EXPECT_FALSE(coll.doc().ChildrenByTag(car, "description").empty());
  }
}

TEST(XmarkGenTest, HitsTargetSize) {
  for (size_t target : {size_t{64} << 10, size_t{256} << 10}) {
    XmarkOptions opts;
    opts.target_bytes = target;
    xml::Document doc = GenerateXmark(opts);
    EXPECT_GE(doc.ApproximateBytes(), target);
    EXPECT_LE(doc.ApproximateBytes(), target + (target / 4) + 4096)
        << "overshoot too large";
  }
}

TEST(XmarkGenTest, Deterministic) {
  XmarkOptions opts;
  opts.target_bytes = 64 << 10;
  xml::Document a = GenerateXmark(opts);
  xml::Document b = GenerateXmark(opts);
  EXPECT_EQ(a.size(), b.size());
}

TEST(XmarkGenTest, SchemaShape) {
  XmarkOptions opts;
  opts.target_bytes = 128 << 10;
  index::Collection coll = index::Collection::Build(GenerateXmark(opts));
  EXPECT_GT(coll.tags().Count("person"), 0u);
  EXPECT_GT(coll.tags().Count("item"), 0u);
  EXPECT_GT(coll.tags().Count("open_auction"), 0u);
  EXPECT_EQ(coll.tags().Count("site"), 1u);
  // Every person has a profile with a business flag.
  for (xml::NodeId person : coll.tags().Elements("person")) {
    EXPECT_NE(coll.doc().FindDescendant(person, "business"),
              xml::kInvalidNode);
  }
}

TEST(XmarkGenTest, Fig5KeywordsPresent) {
  XmarkOptions opts;
  opts.target_bytes = 128 << 10;
  index::Collection coll = index::Collection::Build(GenerateXmark(opts));
  for (const char* kw :
       {"Yes", "male", "United States", "College", "Phoenix"}) {
    EXPECT_TRUE(coll.MakePhrase(kw).known()) << kw;
  }
  // Some persons aged 33 exist for the π5 VOR.
  int age33 = 0;
  for (xml::NodeId person : coll.tags().Elements("person")) {
    if (coll.AttrNumeric(person, "age").value_or(0) == 33) ++age33;
  }
  EXPECT_GT(age33, 0);
}

TEST(InexGenTest, EightTopicsWithPaperIds) {
  InexCollection inex = GenerateInex({});
  ASSERT_EQ(inex.topics.size(), 8u);
  std::vector<int> ids;
  for (const auto& t : inex.topics) ids.push_back(t.id);
  EXPECT_EQ(ids, (std::vector<int>{130, 131, 132, 140, 141, 142, 145, 151}));
  ASSERT_EQ(inex.relevant.size(), 8u);
}

TEST(InexGenTest, RelevantComponentsMatchRequestedTags) {
  InexCollection inex = GenerateInex({});
  for (size_t t = 0; t < inex.topics.size(); ++t) {
    for (xml::NodeId id : inex.relevant[t]) {
      const std::string& tag = inex.doc.node(id).tag;
      bool requested = false;
      for (const std::string& r : inex.topics[t].requested_tags) {
        if (r == tag) requested = true;
      }
      EXPECT_TRUE(requested) << "topic " << inex.topics[t].id
                             << " relevant component has tag " << tag;
    }
  }
}

TEST(InexGenTest, FullRelevantContainMainAndNarrative) {
  InexCollection inex = GenerateInex({});
  index::Collection coll = index::Collection::Build(std::move(inex.doc));
  for (size_t t = 0; t < inex.topics.size(); ++t) {
    const auto& topic = inex.topics[t];
    index::Phrase main = coll.MakePhrase(topic.main_keyword);
    int with_main = 0;
    int without_main = 0;
    for (xml::NodeId id : inex.relevant[t]) {
      bool has_main = coll.CountOccurrences(id, main) > 0;
      (has_main ? with_main : without_main)++;
      // All relevant components carry at least one narrative keyword.
      bool has_narr = false;
      for (const std::string& n : topic.narrative) {
        if (coll.CountOccurrences(id, coll.MakePhrase(n)) > 0) {
          has_narr = true;
        }
      }
      EXPECT_TRUE(has_narr) << "topic " << topic.id;
    }
    EXPECT_GT(with_main, 0) << "topic " << topic.id;
    EXPECT_GT(without_main, 0) << "topic " << topic.id;
  }
}

TEST(InexGenTest, TopicQueryAndProfileParse) {
  InexCollection inex = GenerateInex({});
  for (const auto& topic : inex.topics) {
    for (const std::string& tag : topic.requested_tags) {
      std::string q = TopicQuery(topic, tag);
      std::string p = TopicProfile(topic, tag);
      EXPECT_NE(q.find(tag), std::string::npos);
      EXPECT_NE(p.find("kor"), std::string::npos);
    }
  }
}

TEST(InexGenTest, ArticlesHaveIeeeShape) {
  InexCollection inex = GenerateInex({});
  index::Collection coll = index::Collection::Build(std::move(inex.doc));
  EXPECT_GT(coll.tags().Count("article"), 20u);
  for (xml::NodeId article : coll.tags().Elements("article")) {
    EXPECT_NE(coll.doc().FindDescendant(article, "abs"), xml::kInvalidNode);
    EXPECT_NE(coll.doc().FindDescendant(article, "sec"), xml::kInvalidNode);
    EXPECT_NE(coll.doc().FindDescendant(article, "au"), xml::kInvalidNode);
  }
}

}  // namespace
}  // namespace pimento::data
