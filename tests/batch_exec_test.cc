#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/data/car_gen.h"
#include "src/exec/profile_cache.h"
#include "src/exec/worker_pool.h"

namespace pimento::core {
namespace {

constexpr const char* kCarQuery =
    "//car[./description[ftcontains(., \"good condition\") and "
    "ftcontains(., \"low mileage\")] and ./price < 2000]";

constexpr const char* kFig2Profile = R"(
profile figure2
rank K,V,S
sr p1 priority 3: if //car/description[ftcontains(., "low mileage")] then delete ftcontains(car, "good condition")
sr p2 priority 1: if //car/description[ftcontains(., "good condition")] then add ftcontains(description, "american")
sr p3 priority 2: if //car/description[ftcontains(., "good condition")] then delete ftcontains(description, "low mileage")
vor pi1: tag=car prefer color = "red"
kor pi4: tag=car prefer ftcontains("best bid")
kor pi5: tag=car prefer ftcontains("NYC")
)";

constexpr const char* kKorProfile = R"(
profile kors
rank K,V,S
kor pi1: tag=car prefer ftcontains("best bid")
kor pi2: tag=car prefer ftcontains("NYC")
)";

// The paper's canonical ambiguous VOR pair, without resolving priorities.
constexpr const char* kAmbiguousProfile = R"(
profile ambiguous
vor pi1: tag=car prefer color = "red"
vor pi2: tag=car prefer lower mileage
)";

SearchEngine CarEngine(int cars = 60) {
  data::CarGenOptions gen;
  gen.num_cars = cars;
  return SearchEngine(index::Collection::Build(data::GenerateCarDealer(gen)));
}

// Byte-exact rendering of one outcome: doubles are printed with %a so two
// results serialize equally only when every score is bit-identical.
std::string Canonical(const Status& status, const SearchResult& result) {
  std::string out = status.ToString() + "\n";
  if (!status.ok()) return out;
  out += result.encoded_query + "\n" + result.plan_description + "\n";
  char buf[64];
  for (const RankedAnswer& a : result.answers) {
    std::snprintf(buf, sizeof(buf), "#%d n%d s=%a k=%a", a.rank, a.node, a.s,
                  a.k);
    out += buf;
    for (double v : a.vor_keys) {
      std::snprintf(buf, sizeof(buf), " v=%a", v);
      out += buf;
    }
    out += "\n";
  }
  return out;
}

std::string CanonicalSequential(const SearchEngine& engine,
                                const BatchRequest& req,
                                const SearchOptions& options) {
  StatusOr<SearchResult> result =
      engine.Search(req.query_text, req.profile_text,
                    req.options.has_value() ? *req.options : options);
  if (!result.ok()) return Canonical(result.status(), SearchResult{});
  return Canonical(Status::OK(), *result);
}

std::vector<BatchRequest> MixedRequests() {
  std::vector<BatchRequest> requests;
  for (int i = 0; i < 4; ++i) {
    requests.push_back({kCarQuery, kFig2Profile, std::nullopt});
    requests.push_back({"//car[./price < 2000]", "", std::nullopt});
    requests.push_back({"car[", "", std::nullopt});  // parse error
    requests.push_back({"//car", kAmbiguousProfile, std::nullopt});
    requests.push_back({"//car[./price < 3000]", kKorProfile, std::nullopt});
    SearchOptions deep;
    deep.k = 3;
    deep.strategy = plan::Strategy::kNaive;
    requests.push_back({kCarQuery, kKorProfile, deep});
  }
  return requests;
}

TEST(BatchExecTest, MatchesSequentialSearchAtEveryWorkerCount) {
  SearchEngine engine = CarEngine();
  std::vector<BatchRequest> requests = MixedRequests();
  BatchOptions options;
  options.search.k = 5;

  std::vector<std::string> expected;
  expected.reserve(requests.size());
  for (const BatchRequest& req : requests) {
    expected.push_back(CanonicalSequential(engine, req, options.search));
  }

  for (int workers : {1, 2, 8}) {
    options.num_workers = workers;
    BatchResult batch = engine.BatchSearch(requests, options);
    ASSERT_EQ(batch.items.size(), requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      EXPECT_EQ(Canonical(batch.items[i].status, batch.items[i].result),
                expected[i])
          << "request " << i << " at " << workers << " workers";
    }
  }
}

TEST(BatchExecTest, BadRequestsFailAloneNotTheBatch) {
  SearchEngine engine = CarEngine(30);
  std::vector<BatchRequest> requests = {
      {"//car[./price < 2000]", "", std::nullopt},
      {"car[", "", std::nullopt},
      {"//car", kAmbiguousProfile, std::nullopt},
      {"//car", "nonsense line", std::nullopt},
  };
  BatchOptions options;
  options.num_workers = 2;
  BatchResult batch = engine.BatchSearch(requests, options);
  ASSERT_EQ(batch.items.size(), 4u);
  EXPECT_TRUE(batch.items[0].status.ok());
  EXPECT_FALSE(batch.items[0].result.answers.empty());
  EXPECT_EQ(batch.items[1].status.code(), StatusCode::kParseError);
  EXPECT_EQ(batch.items[2].status.code(), StatusCode::kAmbiguous);
  EXPECT_EQ(batch.items[3].status.code(), StatusCode::kParseError);
}

TEST(BatchExecTest, RepeatedProfileHitsCompilationCache) {
  SearchEngine engine = CarEngine(30);
  engine.profile_cache().Clear();

  std::vector<BatchRequest> requests;
  for (int i = 0; i < 8; ++i) {
    requests.push_back({"//car[./price < 3000]", kKorProfile, std::nullopt});
  }
  BatchOptions options;
  options.num_workers = 4;
  BatchResult batch = engine.BatchSearch(requests, options);

  exec::ProfileCache::CacheStats stats = engine.profile_cache().GetStats();
  // One compilation; every other request is served from the cache. (A
  // concurrent first wave can in principle miss more than once — the
  // executor compiles outside the lock — so bound both sides.)
  EXPECT_GE(stats.hits, 4);
  EXPECT_LE(stats.misses, 4);
  EXPECT_EQ(stats.hits + stats.misses, 8);
  EXPECT_EQ(stats.size, 1u);
  EXPECT_EQ(batch.stats.profile_cache_hits, stats.hits);
  EXPECT_EQ(batch.stats.profile_cache_misses, stats.misses);

  // The sequential text path shares the same cache.
  auto result = engine.Search("//car", kKorProfile, SearchOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(engine.profile_cache().GetStats().hits, stats.hits + 1);
}

TEST(BatchExecTest, CacheEvictsLeastRecentlyUsed) {
  exec::ProfileCache cache(/*capacity=*/2);
  ASSERT_TRUE(cache.GetOrCompile("profile a").ok());
  ASSERT_TRUE(cache.GetOrCompile("profile b").ok());
  ASSERT_TRUE(cache.GetOrCompile("profile a").ok());  // refresh a
  ASSERT_TRUE(cache.GetOrCompile("profile c").ok());  // evicts b
  exec::ProfileCache::CacheStats stats = cache.GetStats();
  EXPECT_EQ(stats.size, 2u);
  ASSERT_TRUE(cache.GetOrCompile("profile a").ok());  // still resident
  EXPECT_EQ(cache.GetStats().hits, stats.hits + 1);
  ASSERT_TRUE(cache.GetOrCompile("profile b").ok());  // recompiled
  EXPECT_EQ(cache.GetStats().misses, stats.misses + 1);
}

TEST(BatchExecTest, ParseFailuresAreNotCached) {
  exec::ProfileCache cache;
  EXPECT_FALSE(cache.GetOrCompile("nonsense line").ok());
  EXPECT_FALSE(cache.GetOrCompile("nonsense line").ok());
  exec::ProfileCache::CacheStats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.size, 0u);
}

TEST(BatchExecTest, EmptyBatchAndSingleWorkerClamp) {
  SearchEngine engine = CarEngine(10);
  BatchOptions options;
  options.num_workers = 0;  // clamped to 1
  BatchResult empty = engine.BatchSearch(std::vector<BatchRequest>{}, options);
  EXPECT_TRUE(empty.items.empty());

  std::vector<BatchRequest> one = {{"//car", "", std::nullopt}};
  BatchResult batch = engine.BatchSearch(one, options);
  ASSERT_EQ(batch.items.size(), 1u);
  EXPECT_TRUE(batch.items[0].status.ok());
}

TEST(BatchExecTest, SearchRequestItemsMatchSequentialExecute) {
  SearchEngine engine = CarEngine();

  // Heterogeneous per-item surfaces: different options, modes, limits and
  // trace flags in one batch — the full SearchRequest repertoire.
  std::vector<SearchRequest> requests;
  requests.push_back(SearchRequest::Text(kCarQuery, kFig2Profile));
  SearchOptions small;
  small.k = 3;
  small.strategy = plan::Strategy::kNaive;
  requests.push_back(SearchRequest::Text("//car[./price < 3000]", kKorProfile,
                                         small));
  SearchRequest relaxed = SearchRequest::Text("//car[./price < 100]", "");
  relaxed.mode = SearchMode::kRelaxed;
  requests.push_back(relaxed);
  SearchRequest winnow = SearchRequest::Text("//car", kKorProfile);
  winnow.mode = SearchMode::kWinnow;
  requests.push_back(winnow);
  SearchRequest traced = SearchRequest::Text("//car[./price < 2000]", "");
  traced.trace.enabled = true;
  requests.push_back(traced);
  SearchRequest limited = SearchRequest::Text("//car", "");
  limited.limits.max_answers = 2;  // fails with kResourceExhausted
  requests.push_back(limited);
  requests.push_back(SearchRequest::Text("car[", ""));  // parse error

  std::vector<std::string> expected;
  expected.reserve(requests.size());
  for (const SearchRequest& req : requests) {
    StatusOr<SearchResult> result = engine.Execute(req);
    expected.push_back(result.ok() ? Canonical(Status::OK(), *result)
                                   : Canonical(result.status(),
                                               SearchResult{}));
  }

  for (int workers : {1, 2, 4, 8}) {
    BatchOptions options;
    options.num_workers = workers;
    BatchResult batch = engine.BatchSearch(requests, options);
    ASSERT_EQ(batch.items.size(), requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      EXPECT_EQ(Canonical(batch.items[i].status, batch.items[i].result),
                expected[i])
          << "workers=" << workers << " item=" << i;
    }
  }

  // The traced item really carried its span tree through the batch.
  BatchOptions options;
  options.num_workers = 4;
  BatchResult batch = engine.BatchSearch(requests, options);
  EXPECT_TRUE(batch.items[4].result.trace.enabled);
  EXPECT_GT(batch.items[4].result.trace.spans.size(), 1u);
  EXPECT_FALSE(batch.items[0].result.trace.enabled);
  EXPECT_EQ(batch.items[5].status.code(), StatusCode::kResourceExhausted);
}

TEST(WorkerPoolTest, ParallelForRunsEveryIndexOnce) {
  std::vector<std::atomic<int>> counts(1000);
  for (auto& c : counts) c.store(0);
  exec::WorkerPool::ParallelFor(8, counts.size(),
                                [&](size_t i) { counts[i].fetch_add(1); });
  for (size_t i = 0; i < counts.size(); ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(WorkerPoolTest, SubmitWaitDrainsAllTasks) {
  exec::WorkerPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&done] { done.fetch_add(1); }));
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 100);
}

}  // namespace
}  // namespace pimento::core
