// Tests for the XQuery-Full-Text window (proximity) semantics: unordered
// co-occurrence of all phrase terms within w consecutive tokens.

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/index/collection.h"
#include "src/tpq/tpq_parser.h"
#include "src/xml/parser.h"

namespace pimento::index {
namespace {

Collection BuildFrom(std::string_view xml_text) {
  auto doc = xml::ParseXml(xml_text);
  EXPECT_TRUE(doc.ok());
  return Collection::Build(std::move(doc).value());
}

TEST(WindowTest, ExactPhraseVersusWindow) {
  Collection coll = BuildFrom("<a>data heavy mining pipeline</a>");
  Phrase exact = coll.MakePhrase("data mining");
  Phrase win3 = coll.MakePhrase("data mining", 3);
  Phrase win2 = coll.MakePhrase("data mining", 2);
  EXPECT_EQ(coll.CountOccurrences(0, exact), 0);
  EXPECT_EQ(coll.CountOccurrences(0, win3), 1);  // "data heavy mining"
  EXPECT_EQ(coll.CountOccurrences(0, win2), 0);
}

TEST(WindowTest, UnorderedWithinWindow) {
  Collection coll = BuildFrom("<a>mining of data</a>");
  EXPECT_EQ(coll.CountOccurrences(0, coll.MakePhrase("data mining")), 0);
  EXPECT_EQ(coll.CountOccurrences(0, coll.MakePhrase("data mining", 3)), 1);
}

TEST(WindowTest, AdjacentStillMatchesWindow) {
  Collection coll = BuildFrom("<a>data mining rocks</a>");
  EXPECT_EQ(coll.CountOccurrences(0, coll.MakePhrase("data mining", 2)), 1);
}

TEST(WindowTest, RespectsElementSpans) {
  Collection coll = BuildFrom("<r><a>data x</a><b>mining</b></r>");
  xml::NodeId a = coll.doc().FindDescendant(0, "a");
  // Inside <a> alone there is no "mining" within any window.
  EXPECT_EQ(coll.CountOccurrences(a, coll.MakePhrase("data mining", 5)), 0);
  // The root's span contains both.
  EXPECT_EQ(coll.CountOccurrences(0, coll.MakePhrase("data mining", 5)), 1);
}

TEST(WindowTest, CountsDistinctAnchors) {
  Collection coll = BuildFrom("<a>data mining and data heavy mining</a>");
  // Anchor = rarest term; "data" and "mining" both occur twice, tie keeps
  // the first ("data"): both data-positions have mining within 3.
  EXPECT_EQ(coll.CountOccurrences(0, coll.MakePhrase("data mining", 3)), 2);
}

TEST(WindowTest, SingleTermWindowEqualsTermCount) {
  Collection coll = BuildFrom("<a>kw other kw</a>");
  EXPECT_EQ(coll.CountOccurrences(0, coll.MakePhrase("kw", 4)), 2);
  EXPECT_EQ(coll.CountOccurrences(0, coll.MakePhrase("kw")), 2);
}

TEST(WindowTest, TpqSyntaxParsesAndRoundTrips) {
  auto q = tpq::ParseTpq(
      "//abs[ftcontains(., \"data mining\" window 8)]");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->node(0).keyword_predicates.size(), 1u);
  EXPECT_EQ(q->node(0).keyword_predicates[0].window, 8);
  std::string printed = q->ToString();
  auto again = tpq::ParseTpq(printed);
  ASSERT_TRUE(again.ok()) << printed;
  EXPECT_EQ(again->node(0).keyword_predicates[0].window, 8);
}

TEST(WindowTest, EndToEndWidensMatches) {
  auto engine = core::SearchEngine::FromXml(
      "<r><doc>query fast optimization</doc>"
      "<doc>query optimization</doc><doc>unrelated text</doc></r>");
  ASSERT_TRUE(engine.ok());
  auto exact = engine->Search(
      "//doc[ftcontains(., \"query optimization\")]",
      core::SearchOptions{.k = 10});
  auto window = engine->Search(
      "//doc[ftcontains(., \"query optimization\" window 3)]",
      core::SearchOptions{.k = 10});
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(window.ok());
  EXPECT_EQ(exact->answers.size(), 1u);
  EXPECT_EQ(window->answers.size(), 2u);
}

}  // namespace
}  // namespace pimento::index
