#include <gtest/gtest.h>

#include "src/profile/conflict_graph.h"

#include <algorithm>
#include "src/profile/flock.h"
#include "src/profile/rule_parser.h"
#include "src/tpq/containment.h"
#include "src/tpq/tpq_parser.h"

namespace pimento::profile {
namespace {

tpq::Tpq Q(const char* text) {
  auto q = tpq::ParseTpq(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

ScopingRule SR(const std::string& text) {
  auto r = ParseScopingRule(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return *r;
}

constexpr const char* kCarQuery =
    "//car[./description[ftcontains(., \"good condition\") and "
    "ftcontains(., \"low mileage\")] and ./price < 2000]";

// The Fig. 2 rules.
std::vector<ScopingRule> Fig2Rules(int p1 = 0, int p2 = 0, int p3 = 0) {
  return {
      SR("sr p1 priority " + std::to_string(p1) +
         ": if //car/description[ftcontains(., \"low mileage\")] then "
         "delete ftcontains(car, \"good condition\")"),
      SR("sr p2 priority " + std::to_string(p2) +
         ": if //car/description[ftcontains(., \"good condition\")] then "
         "add ftcontains(description, \"american\")"),
      SR("sr p3 priority " + std::to_string(p3) +
         ": if //car/description[ftcontains(., \"good condition\")] then "
         "delete ftcontains(description, \"low mileage\")"),
  };
}

TEST(ConflictTest, Fig2AllApplicable) {
  ConflictReport report = AnalyzeConflicts(Fig2Rules(), Q(kCarQuery));
  EXPECT_EQ(report.applicable.size(), 3u);
}

TEST(ConflictTest, P1KillsP2AndP3) {
  // Applying p1 removes "good condition", so p2 and p3 become inapplicable.
  ConflictReport report = AnalyzeConflicts(Fig2Rules(), Q(kCarQuery));
  auto has = [&](int i, int j) {
    for (const auto& [a, b] : report.conflicts) {
      if (a == i && b == j) return true;
    }
    return false;
  };
  EXPECT_TRUE(has(0, 1));  // p1 conflicts with p2 (the paper's example)
  EXPECT_TRUE(has(0, 2));
  // p3 removes "low mileage", which p1's condition needs.
  EXPECT_TRUE(has(2, 0));
}

TEST(ConflictTest, CycleDetected) {
  // p1 and p3 conflict with each other (the paper's cycle example).
  ConflictReport report = AnalyzeConflicts(Fig2Rules(), Q(kCarQuery));
  EXPECT_FALSE(report.acyclic);
}

TEST(ConflictTest, CycleWithoutPrioritiesIsUnordered) {
  ConflictReport report =
      AnalyzeConflicts(Fig2Rules(0, 0, 0), Q(kCarQuery));
  EXPECT_FALSE(report.ordered);
}

TEST(ConflictTest, PrioritiesBreakCycles) {
  ConflictReport report =
      AnalyzeConflicts(Fig2Rules(3, 1, 2), Q(kCarQuery));
  EXPECT_FALSE(report.acyclic);
  ASSERT_TRUE(report.ordered);
  // Priority order: p2 (1), p3 (2), p1 (3).
  ASSERT_EQ(report.order.size(), 3u);
  EXPECT_EQ(report.order[0], 1);
  EXPECT_EQ(report.order[1], 2);
  EXPECT_EQ(report.order[2], 0);
}

TEST(ConflictTest, AcyclicRulesGetTopologicalOrder) {
  // add-only rules never conflict.
  std::vector<ScopingRule> rules = {
      SR("sr a: if //car then add ftcontains(car, \"one\")"),
      SR("sr b: if //car then add ftcontains(car, \"two\")"),
  };
  ConflictReport report = AnalyzeConflicts(rules, Q("//car"));
  EXPECT_TRUE(report.acyclic);
  ASSERT_TRUE(report.ordered);
  EXPECT_EQ(report.order.size(), 2u);
}

TEST(ConflictTest, KilledRuleOrderedBeforeKiller) {
  // killer deletes the keyword that victim's condition requires; victim
  // does not affect killer. Topological order must run victim first.
  std::vector<ScopingRule> rules = {
      SR("sr killer: if //car then delete ftcontains(car, \"x\")"),
      SR("sr victim: if //car[ftcontains(., \"x\")] then add "
         "ftcontains(car, \"y\")"),
  };
  ConflictReport report =
      AnalyzeConflicts(rules, Q("//car[ftcontains(., \"x\")]"));
  EXPECT_TRUE(report.acyclic);
  ASSERT_EQ(report.order.size(), 2u);
  EXPECT_EQ(report.order[0], 1);  // victim first
  EXPECT_EQ(report.order[1], 0);
}

TEST(ConflictTest, InapplicableRulesExcluded) {
  std::vector<ScopingRule> rules = {
      SR("sr t: if //truck then add ftcontains(truck, \"d\")"),
      SR("sr c: if //car then add ftcontains(car, \"d\")"),
  };
  ConflictReport report = AnalyzeConflicts(rules, Q("//car"));
  ASSERT_EQ(report.applicable.size(), 1u);
  EXPECT_EQ(report.applicable[0], 1);
  EXPECT_EQ(report.order.size(), 1u);
}

TEST(ConflictTest, ReportToStringMentionsRules) {
  auto rules = Fig2Rules(3, 1, 2);
  ConflictReport report = AnalyzeConflicts(rules, Q(kCarQuery));
  std::string s = report.ToString(rules);
  EXPECT_NE(s.find("p1"), std::string::npos);
  EXPECT_NE(s.find("kills"), std::string::npos);
}

TEST(FlockTest, CycleWithoutPrioritiesFailsWithConflict) {
  auto flock = BuildFlock(Q(kCarQuery), Fig2Rules(0, 0, 0));
  ASSERT_FALSE(flock.ok());
  EXPECT_EQ(flock.status().code(), StatusCode::kConflict);
}

TEST(FlockTest, MembersFollowPriorityOrder) {
  auto flock = BuildFlock(Q(kCarQuery), Fig2Rules(3, 1, 2));
  ASSERT_TRUE(flock.ok()) << flock.status().ToString();
  // p2 applies, then p3; p1 becomes inapplicable (low mileage removed).
  ASSERT_EQ(flock->applied_rules.size(), 2u);
  EXPECT_EQ(flock->applied_rules[0], 1);
  EXPECT_EQ(flock->applied_rules[1], 2);
  EXPECT_EQ(flock->members.size(), 3u);
  // members[0] is the original query.
  EXPECT_EQ(flock->members[0].ToString(), Q(kCarQuery).ToString());
}

TEST(FlockTest, EncodedQueryKeepsRequiredCore) {
  auto flock = BuildFlock(Q(kCarQuery), Fig2Rules(3, 1, 2));
  ASSERT_TRUE(flock.ok());
  const tpq::Tpq& enc = flock->encoded;
  int desc = enc.FindByTag("description");
  ASSERT_GE(desc, 0);
  int required = 0;
  int optional = 0;
  for (const auto& kp : enc.node(desc).keyword_predicates) {
    (kp.optional ? optional : required)++;
  }
  // "good condition" stays required; "low mileage" demoted; "american"
  // added optional.
  EXPECT_EQ(required, 1);
  EXPECT_EQ(optional, 2);
}

TEST(FlockTest, NoRulesYieldsSingletonFlock) {
  auto flock = BuildFlock(Q(kCarQuery), {});
  ASSERT_TRUE(flock.ok());
  EXPECT_EQ(flock->members.size(), 1u);
  EXPECT_EQ(flock->encoded.ToString(), Q(kCarQuery).ToString());
}

TEST(FlockTest, EveryMemberSubsumedByEncodedRequiredPart) {
  // Property: strip optional predicates from the encoded query; each flock
  // member must be contained in that required core (the encoding's
  // outer-join keeps every member's answers).
  auto flock = BuildFlock(Q(kCarQuery), Fig2Rules(3, 1, 2));
  ASSERT_TRUE(flock.ok());
  tpq::Tpq core = flock->encoded;
  for (int i = 0; i < core.size(); ++i) {
    auto& kps = core.mutable_node(i).keyword_predicates;
    kps.erase(std::remove_if(kps.begin(), kps.end(),
                             [](const tpq::KeywordPredicate& kp) {
                               return kp.optional;
                             }),
              kps.end());
    auto& vps = core.mutable_node(i).value_predicates;
    vps.erase(std::remove_if(vps.begin(), vps.end(),
                             [](const tpq::ValuePredicate& vp) {
                               return vp.optional;
                             }),
              vps.end());
  }
  for (const tpq::Tpq& member : flock->members) {
    EXPECT_TRUE(tpq::Contains(core, member))
        << "member " << member.ToString() << " not contained in core "
        << core.ToString();
  }
}

}  // namespace
}  // namespace pimento::profile
