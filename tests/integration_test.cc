// Cross-feature integration tests: rank orders, structural prefilter at
// the engine level, thesaurus + scoping rules, winnow vs ranking, and
// invariants of the search statistics.

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/data/car_gen.h"
#include "src/data/xmark_gen.h"
#include "src/profile/rule_parser.h"
#include "src/tpq/tpq_parser.h"

namespace pimento::core {
namespace {

SearchEngine CarEngine(int cars = 50) {
  return SearchEngine(index::Collection::Build(
      data::GenerateCarDealer({.num_cars = cars})));
}

TEST(RankOrderTest, VksPutsValuePreferencesFirst) {
  SearchEngine engine = CarEngine();
  // Under V,K,S a red car outranks a non-red car with a huge K score.
  const char* profile_vks = R"(
rank V,K,S
vor red: tag=car prefer color = "red"
kor bid: tag=car prefer ftcontains("best bid") weight 100
)";
  auto result =
      engine.Search("//car", profile_vks, SearchOptions{.k = 10});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  bool seen_non_red = false;
  for (const RankedAnswer& a : result->answers) {
    bool red =
        engine.collection().AttrString(a.node, "color").value_or("") == "red";
    if (!red) seen_non_red = true;
    EXPECT_FALSE(red && seen_non_red) << "V must dominate K under V,K,S";
  }
}

TEST(RankOrderTest, KvsPutsKeywordPreferencesFirst) {
  SearchEngine engine = CarEngine();
  const char* profile_kvs = R"(
rank K,V,S
vor red: tag=car prefer color = "red"
kor bid: tag=car prefer ftcontains("best bid") weight 100
)";
  auto result =
      engine.Search("//car", profile_kvs, SearchOptions{.k = 3});
  ASSERT_TRUE(result.ok());
  // The generated data always contains at least one "best bid" car (the
  // Fig. 1 car); it must be first even though it is black.
  ASSERT_FALSE(result->answers.empty());
  EXPECT_GT(result->answers[0].k, 0.0);
}

TEST(RankOrderTest, SOrderIgnoresProfileScores) {
  SearchEngine engine = CarEngine();
  const char* profile_s = R"(
rank S
kor bid: tag=car prefer ftcontains("best bid") weight 100
)";
  const char* query = "//car[ftcontains(., \"good condition\")]";
  auto with_kor = engine.Search(query, profile_s, SearchOptions{.k = 5});
  auto without = engine.Search(query, SearchOptions{.k = 5});
  ASSERT_TRUE(with_kor.ok());
  ASSERT_TRUE(without.ok());
  ASSERT_EQ(with_kor->answers.size(), without->answers.size());
  for (size_t i = 0; i < with_kor->answers.size(); ++i) {
    EXPECT_EQ(with_kor->answers[i].node, without->answers[i].node);
  }
}

class PrefilterEquivalenceTest
    : public ::testing::TestWithParam<plan::Strategy> {};

TEST_P(PrefilterEquivalenceTest, SameAnswersWithAndWithoutPrefilter) {
  data::XmarkOptions gen;
  gen.target_bytes = 128u << 10;
  SearchEngine engine(index::Collection::Build(data::GenerateXmark(gen)));
  const char* query =
      "//person[.//business[ftcontains(., \"Yes\")] and ./address/city]";
  const char* profile = R"(
kor k1: tag=person prefer ftcontains("male")
kor k2: tag=person prefer ftcontains("Phoenix") weight 4
vor pi5: tag=person prefer age = "33"
)";
  SearchOptions base;
  base.k = 10;
  base.strategy = GetParam();
  SearchOptions pre = base;
  pre.use_structural_prefilter = true;
  auto r1 = engine.Search(query, profile, base);
  auto r2 = engine.Search(query, profile, pre);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_NE(r2->plan_description.find("structjoin"), std::string::npos);
  ASSERT_EQ(r1->answers.size(), r2->answers.size());
  for (size_t i = 0; i < r1->answers.size(); ++i) {
    EXPECT_EQ(r1->answers[i].node, r2->answers[i].node) << "rank " << i + 1;
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, PrefilterEquivalenceTest,
                         ::testing::Values(plan::Strategy::kNaive,
                                           plan::Strategy::kPush),
                         [](const auto& info) {
                           return info.param == plan::Strategy::kNaive
                                      ? std::string("Naive")
                                      : std::string("Push");
                         });

TEST(RankOrderTest, VksStrategiesAgreeWithNaive) {
  data::XmarkOptions gen;
  gen.target_bytes = 128u << 10;
  SearchEngine engine(index::Collection::Build(data::GenerateXmark(gen)));
  const char* query = "//person[.//business[ftcontains(., \"Yes\")]]";
  const char* profile = R"(
rank V,K,S
vor pi5 priority 1: tag=person prefer age = "33"
kor k1: tag=person prefer ftcontains("male") weight 8
kor k2: tag=person prefer ftcontains("Phoenix")
)";
  SearchOptions naive;
  naive.k = 10;
  naive.strategy = plan::Strategy::kNaive;
  auto baseline = engine.Search(query, profile, naive);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  for (plan::Strategy strategy :
       {plan::Strategy::kInterleave, plan::Strategy::kInterleaveSorted,
        plan::Strategy::kPush}) {
    SearchOptions opt;
    opt.k = 10;
    opt.strategy = strategy;
    auto result = engine.Search(query, profile, opt);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->answers.size(), baseline->answers.size());
    for (size_t i = 0; i < result->answers.size(); ++i) {
      EXPECT_EQ(result->answers[i].node, baseline->answers[i].node)
          << "V,K,S strategy " << static_cast<int>(strategy) << " rank "
          << i + 1;
    }
  }
}

TEST(ThesaurusIntegrationTest, ExpansionAppliesToSrAddedKeywords) {
  SearchEngine engine = CarEngine();
  text::Thesaurus thesaurus;
  thesaurus.AddSynonyms({"american", "domestic"});
  // The SR adds "american" as an optional predicate; the thesaurus then
  // expands it with "domestic".
  const char* profile =
      "sr p2: if //car then add ftcontains(car, \"american\")";
  auto query = tpq::ParseTpq("//car");
  ASSERT_TRUE(query.ok());
  auto prof = profile::ParseProfile(profile);
  ASSERT_TRUE(prof.ok());
  SearchOptions options;
  options.thesaurus = &thesaurus;
  auto result = engine.Search(*query, *prof, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->encoded_query.find("domestic"), std::string::npos)
      << result->encoded_query;
}

TEST(WinnowIntegrationTest, WinnowIsSubsetOfAnswersAndUndominated) {
  SearchEngine engine = CarEngine(80);
  const char* profile = R"(
vor m priority 1: tag=car prefer lower mileage
vor red priority 2: tag=car prefer color = "red"
)";
  auto query = tpq::ParseTpq("//car[./price < 8000]");
  ASSERT_TRUE(query.ok());
  auto prof = profile::ParseProfile(profile);
  ASSERT_TRUE(prof.ok());
  auto winnowed = engine.SearchWinnow(*query, *prof, SearchOptions{.k = 50});
  ASSERT_TRUE(winnowed.ok()) << winnowed.status().ToString();
  ASSERT_FALSE(winnowed->answers.empty());
  // Under the (total after priorities) mileage-then-color preference the
  // undominated set is exactly the minimal-mileage car(s) — far fewer
  // than the full answer set.
  auto all = engine.Search(*query, *prof, SearchOptions{.k = 1000});
  ASSERT_TRUE(all.ok());
  EXPECT_LT(winnowed->answers.size(), all->answers.size());
  // The winnow winner has the globally smallest mileage among answers
  // with a mileage value.
  double best = 1e18;
  for (const RankedAnswer& a : all->answers) {
    auto m = engine.collection().AttrNumeric(a.node, "mileage");
    if (m.has_value()) best = std::min(best, *m);
  }
  auto top_m =
      engine.collection().AttrNumeric(winnowed->answers[0].node, "mileage");
  ASSERT_TRUE(top_m.has_value());
  EXPECT_DOUBLE_EQ(*top_m, best);
}

TEST(StatsInvariantsTest, ScannedCoversEmittedPlusPruned) {
  SearchEngine engine = CarEngine(70);
  const char* profile = R"(
kor nyc: tag=car prefer ftcontains("NYC") weight 4
kor bid: tag=car prefer ftcontains("best bid")
)";
  for (plan::Strategy strategy :
       {plan::Strategy::kNaive, plan::Strategy::kInterleave,
        plan::Strategy::kInterleaveSorted, plan::Strategy::kPush}) {
    SearchOptions options;
    options.k = 5;
    options.strategy = strategy;
    options.scan_mode = plan::ScanMode::kTagScan;
    auto result = engine.Search(
        "//car[ftcontains(., \"good condition\")]", profile, options);
    ASSERT_TRUE(result.ok());
    const algebra::PlanStats& s = result->stats;
    EXPECT_EQ(s.scanned, 70);
    EXPECT_LE(s.emitted, 5);
    // Everything scanned is accounted for: filtered, topk-pruned, or it
    // reached the end (final cut may leave sorted leftovers unemitted).
    EXPECT_GE(s.scanned,
              s.pruned_by_filters + s.pruned_by_topk + s.emitted - 5);

    // The postings-anchored scan visits a subset of the tag nodes (only
    // candidates containing the required phrase) but must emit the same
    // ranked answers.
    options.scan_mode = plan::ScanMode::kAuto;
    auto anchored = engine.Search(
        "//car[ftcontains(., \"good condition\")]", profile, options);
    ASSERT_TRUE(anchored.ok());
    EXPECT_LE(anchored->stats.scanned, s.scanned);
    ASSERT_EQ(anchored->answers.size(), result->answers.size());
    for (size_t i = 0; i < anchored->answers.size(); ++i) {
      EXPECT_EQ(anchored->answers[i].node, result->answers[i].node);
      EXPECT_EQ(anchored->answers[i].s, result->answers[i].s);
      EXPECT_EQ(anchored->answers[i].k, result->answers[i].k);
    }
  }
}

TEST(KSelectionTest, LargerKIsPrefixConsistent) {
  SearchEngine engine = CarEngine(60);
  const char* profile = "kor nyc: tag=car prefer ftcontains(\"NYC\")";
  auto small = engine.Search("//car", profile, SearchOptions{.k = 5});
  auto large = engine.Search("//car", profile, SearchOptions{.k = 15});
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  ASSERT_LE(small->answers.size(), large->answers.size());
  for (size_t i = 0; i < small->answers.size(); ++i) {
    EXPECT_EQ(small->answers[i].node, large->answers[i].node)
        << "top-k must be a prefix of top-K for K>k";
  }
}

TEST(EmptyResultTest, NoMatchesIsOkNotError) {
  SearchEngine engine = CarEngine();
  auto result = engine.Search(
      "//car[ftcontains(., \"nonexistent keyword xyz\")]",
      SearchOptions{.k = 5});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->answers.empty());
}

TEST(StemmedEngineTest, EndToEndWithStemming) {
  text::TokenizeOptions stem;
  stem.stem = true;
  SearchEngine engine(index::Collection::Build(
      data::GenerateCarDealer({.num_cars = 30}), stem));
  // "conditions" stems to the same token as "condition".
  auto result = engine.Search(
      "//car[ftcontains(., \"good conditions\")]", SearchOptions{.k = 5});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->answers.empty());
}

}  // namespace
}  // namespace pimento::core
