// Resource-governed execution: deadlines, cooperative cancellation, answer
// and byte budgets, strict vs. degraded (partial-result) mode, and the
// no-limits identity guarantee.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/common/fault_injector.h"
#include "src/core/engine.h"
#include "src/data/car_gen.h"
#include "src/data/xmark_gen.h"
#include "src/exec/execution_context.h"
#include "src/profile/rule_parser.h"
#include "src/tpq/tpq_parser.h"

namespace pimento::core {
namespace {

constexpr const char* kCarQuery =
    "//car[./description[ftcontains(., \"good condition\")] and "
    "./price < 5000]";

constexpr const char* kCarProfile = R"(
profile governed
rank K,V,S
vor pi1: tag=car prefer color = "red"
kor pi4: tag=car prefer ftcontains("best bid")
kor pi5: tag=car prefer ftcontains("NYC")
)";

SearchEngine CarEngine(int cars = 80) {
  data::CarGenOptions gen;
  gen.num_cars = cars;
  return SearchEngine(index::Collection::Build(data::GenerateCarDealer(gen)));
}

SearchEngine XmarkEngine(size_t target_bytes = 256u << 10) {
  return SearchEngine(index::Collection::Build(
      data::GenerateXmark({.target_bytes = target_bytes})));
}

std::string Canonical(const SearchResult& result) {
  std::string out;
  char buf[64];
  for (const RankedAnswer& a : result.answers) {
    std::snprintf(buf, sizeof(buf), "#%d n%d s=%a k=%a\n", a.rank, a.node,
                  a.s, a.k);
    out += buf;
  }
  return out;
}

// --- ExecutionContext unit behavior ---

TEST(ExecutionContextTest, NoLimitsIsInert) {
  exec::ExecutionContext ctx{exec::QueryLimits{}};
  EXPECT_FALSE(ctx.active());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(ctx.ShouldStop());
  EXPECT_TRUE(ctx.CountAnswer());
  EXPECT_TRUE(ctx.TrackBytes(1 << 30));
  EXPECT_FALSE(ctx.stopped());
  EXPECT_TRUE(ctx.ToStatus().ok());
}

TEST(ExecutionContextTest, DeadlineFiresSticky) {
  exec::QueryLimits limits;
  limits.deadline_ms = 0.01;
  exec::ExecutionContext ctx{limits};
  EXPECT_TRUE(ctx.active());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(ctx.CheckNow());
  EXPECT_TRUE(ctx.stopped());
  EXPECT_EQ(ctx.reason(), exec::StopReason::kDeadline);
  EXPECT_EQ(ctx.ToStatus().code(), StatusCode::kDeadlineExceeded);
  // Sticky: every later poll reports the stop without re-reading the clock.
  EXPECT_TRUE(ctx.ShouldStop());
}

TEST(ExecutionContextTest, CancellationToken) {
  std::atomic<bool> cancel{false};
  exec::QueryLimits limits;
  limits.cancel = &cancel;
  exec::ExecutionContext ctx{limits};
  EXPECT_FALSE(ctx.CheckNow());
  cancel.store(true);
  EXPECT_TRUE(ctx.CheckNow());
  EXPECT_EQ(ctx.reason(), exec::StopReason::kCancelled);
  EXPECT_EQ(ctx.ToStatus().code(), StatusCode::kCancelled);
}

TEST(ExecutionContextTest, AnswerAndByteBudgets) {
  exec::QueryLimits limits;
  limits.max_answers = 3;
  exec::ExecutionContext ctx{limits};
  EXPECT_TRUE(ctx.CountAnswer());
  EXPECT_TRUE(ctx.CountAnswer());
  EXPECT_TRUE(ctx.CountAnswer());
  EXPECT_FALSE(ctx.CountAnswer());
  EXPECT_EQ(ctx.reason(), exec::StopReason::kResourceExhausted);

  exec::QueryLimits blimits;
  blimits.max_bytes = 100;
  exec::ExecutionContext bctx{blimits};
  EXPECT_TRUE(bctx.TrackBytes(60));
  bctx.ReleaseBytes(30);
  EXPECT_TRUE(bctx.TrackBytes(60));  // 90 tracked, under budget
  EXPECT_EQ(bctx.peak_bytes(), 90);
  EXPECT_FALSE(bctx.TrackBytes(20));  // 110 > 100
  EXPECT_EQ(bctx.ToStatus().code(), StatusCode::kResourceExhausted);
}

TEST(ExecutionContextTest, FirstStopSiteWins) {
  exec::QueryLimits limits;
  limits.max_answers = 1;
  exec::ExecutionContext ctx{limits};
  ctx.CountAnswer();
  ctx.CountAnswer();
  ctx.NoteStopSite("scan");
  ctx.NoteStopSite("sort");
  EXPECT_EQ(ctx.stop_site(), "scan");
}

// --- identity: no limits (or generous limits) change nothing ---

TEST(GovernorTest, GenerousLimitsAreByteIdenticalToUngovernedRun) {
  SearchEngine engine = CarEngine();
  exec::QueryLimits generous;
  generous.deadline_ms = 60000.0;
  generous.max_answers = 1 << 28;
  generous.max_bytes = 1ll << 40;
  for (plan::ScanMode mode : {plan::ScanMode::kAuto, plan::ScanMode::kTagScan,
                              plan::ScanMode::kPostingsScan}) {
    for (const char* rank : {"rank S\n", "rank K,V,S\n", "rank V,K,S\n"}) {
      std::string profile = std::string("profile p\n") + rank +
                            "vor pi1: tag=car prefer color = \"red\"\n"
                            "kor pi4: tag=car prefer ftcontains(\"NYC\")\n";
      SearchOptions plain{.k = 10, .scan_mode = mode};
      SearchOptions governed{.k = 10, .scan_mode = mode, .limits = generous};
      auto r1 = engine.Search(kCarQuery, profile, plain);
      auto r2 = engine.Search(kCarQuery, profile, governed);
      ASSERT_TRUE(r1.ok()) << r1.status().ToString();
      ASSERT_TRUE(r2.ok()) << r2.status().ToString();
      EXPECT_FALSE(r2->partial);
      EXPECT_EQ(Canonical(*r1), Canonical(*r2))
          << "scan mode " << static_cast<int>(mode) << " rank " << rank;
    }
  }
}

// --- strict vs. degraded outcomes ---

TEST(GovernorTest, MaxAnswersStrictReturnsTypedError) {
  SearchEngine engine = CarEngine();
  SearchOptions options{.k = 10};
  options.limits.max_answers = 5;
  auto result = engine.Search(kCarQuery, kCarProfile, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(GovernorTest, MaxAnswersPartialReturnsRankedPrefix) {
  SearchEngine engine = CarEngine();
  SearchOptions options{.k = 10};
  options.limits.max_answers = 5;
  options.allow_partial = true;
  auto result = engine.Search(kCarQuery, kCarProfile, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->partial);
  EXPECT_EQ(result->stop_reason, exec::StopReason::kResourceExhausted);
  EXPECT_FALSE(result->partial_detail.empty());
  // The prefix is still ranked 1..n.
  for (size_t i = 0; i < result->answers.size(); ++i) {
    EXPECT_EQ(result->answers[i].rank, static_cast<int>(i) + 1);
  }
}

TEST(GovernorTest, UnfiredLimitsLeavePartialFalseAndAnswersIdentical) {
  SearchEngine engine = CarEngine();
  auto full = engine.Search(kCarQuery, kCarProfile, SearchOptions{.k = 10});
  ASSERT_TRUE(full.ok());
  ASSERT_FALSE(full->answers.empty());

  // A budget the query never reaches must not change anything: no partial
  // flag, byte-identical ranking.
  SearchOptions options{.k = 10};
  options.limits.max_answers = 1 << 20;
  options.allow_partial = true;
  auto governed = engine.Search(kCarQuery, kCarProfile, options);
  ASSERT_TRUE(governed.ok());
  EXPECT_FALSE(governed->partial);
  EXPECT_EQ(Canonical(*full), Canonical(*governed));
}

TEST(GovernorTest, PreCancelledStrictFailsWithCancelled) {
  SearchEngine engine = CarEngine();
  std::atomic<bool> cancel{true};
  SearchOptions options{.k = 10};
  options.limits.cancel = &cancel;
  auto result = engine.Search(kCarQuery, kCarProfile, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(GovernorTest, CrossThreadCancellationUnwinds) {
  SearchEngine engine = XmarkEngine();
  // Slow the scan down so the canceller always wins the race.
  FaultInjector::FaultSpec slow;
  slow.kind = FaultInjector::Kind::kSlow;
  slow.delay_ms = 1;
  FaultInjector::Instance().Arm("exec.scan.next", slow);

  std::atomic<bool> cancel{false};
  SearchOptions options{.k = 10};
  options.limits.cancel = &cancel;
  std::thread canceller([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    cancel.store(true);
  });
  auto result = engine.Search("//person[.//business[ftcontains(., \"Yes\")]]",
                              options);
  canceller.join();
  FaultInjector::Instance().DisarmAll();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(GovernorTest, TinyByteBudgetStopsWithResourceExhausted) {
  SearchEngine engine = XmarkEngine();
  SearchOptions options{.k = 50};
  options.limits.max_bytes = 512;
  auto result = engine.Search("//person[.//business[ftcontains(., \"Yes\")]]", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);

  options.allow_partial = true;
  auto degraded = engine.Search("//person[.//business[ftcontains(., \"Yes\")]]", options);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->partial);
  EXPECT_EQ(degraded->stop_reason, exec::StopReason::kResourceExhausted);
}

// --- deadline behavior on a larger corpus ---

TEST(GovernorTest, OneMsBudgetReturnsWellUnderFiftyMs) {
  SearchEngine engine = XmarkEngine(512u << 10);
  SearchOptions options{.k = 10};
  options.limits.deadline_ms = 1.0;
  options.allow_partial = true;
  const char* query = "//person[.//business[ftcontains(., \"Yes\")]]";

  std::vector<double> elapsed;
  for (int i = 0; i < 30; ++i) {
    auto start = std::chrono::steady_clock::now();
    auto result = engine.Search(query, options);
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    elapsed.push_back(ms);
  }
  std::sort(elapsed.begin(), elapsed.end());
  // p99 on 30 samples is the max; the bound has a wide margin over the
  // poll stride's worst-case overshoot, so it holds under sanitizers too.
  EXPECT_LT(elapsed.back(), 50.0)
      << "a 1 ms budget must cut execution well before 50 ms";
}

TEST(GovernorTest, DeadlinePartialReportsProgress) {
  SearchEngine engine = XmarkEngine(512u << 10);
  // Pin the stop to the scan with a slow-operator fault so the test is
  // deterministic: the deadline always fires mid-scan.
  FaultInjector::FaultSpec slow;
  slow.kind = FaultInjector::Kind::kSlow;
  slow.delay_ms = 1;
  FaultInjector::Instance().Arm("exec.scan.next", slow);
  SearchOptions options{.k = 10};
  options.limits.deadline_ms = 5.0;
  options.allow_partial = true;
  auto result = engine.Search("//person[.//business[ftcontains(., \"Yes\")]]", options);
  FaultInjector::Instance().DisarmAll();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->partial);
  EXPECT_EQ(result->stop_reason, exec::StopReason::kDeadline);
  // The partial report names the stage and the per-operator progress.
  EXPECT_NE(result->partial_detail.find("progress:"), std::string::npos)
      << result->partial_detail;
}

TEST(GovernorTest, StrictDeadlineReturnsDeadlineExceeded) {
  SearchEngine engine = XmarkEngine(512u << 10);
  FaultInjector::FaultSpec slow;
  slow.kind = FaultInjector::Kind::kSlow;
  slow.delay_ms = 1;
  FaultInjector::Instance().Arm("exec.scan.next", slow);
  SearchOptions options{.k = 10};
  options.limits.deadline_ms = 5.0;
  auto result = engine.Search("//person[.//business[ftcontains(., \"Yes\")]]", options);
  FaultInjector::Instance().DisarmAll();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

// --- batch: per-request limits ---

TEST(GovernorTest, BatchThreadsPerRequestLimits) {
  SearchEngine engine = CarEngine();
  SearchOptions strict{.k = 10};
  strict.limits.max_answers = 3;
  SearchOptions degraded{.k = 10};
  degraded.limits.max_answers = 3;
  degraded.allow_partial = true;

  std::vector<BatchRequest> requests;
  requests.push_back({kCarQuery, kCarProfile, std::nullopt});
  requests.push_back({kCarQuery, kCarProfile, strict});
  requests.push_back({kCarQuery, kCarProfile, degraded});
  BatchResult batch = engine.BatchSearch(requests, BatchOptions{});
  ASSERT_EQ(batch.items.size(), 3u);
  EXPECT_TRUE(batch.items[0].status.ok());
  EXPECT_FALSE(batch.items[0].result.partial);
  EXPECT_EQ(batch.items[1].status.code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(batch.items[2].status.ok());
  EXPECT_TRUE(batch.items[2].result.partial);
}

// --- winnow under a governor ---

TEST(GovernorTest, WinnowHonorsAnswerBudget) {
  SearchEngine engine = CarEngine();
  auto query = tpq::ParseTpq(kCarQuery);
  ASSERT_TRUE(query.ok());
  auto profile = profile::ParseProfile(
      "profile w\nvor pi1: tag=car prefer color = \"red\"\n");
  ASSERT_TRUE(profile.ok());
  SearchOptions options{.k = 10};
  options.limits.max_answers = 4;
  auto strict = engine.SearchWinnow(*query, *profile, options);
  EXPECT_FALSE(strict.ok());
  options.allow_partial = true;
  auto degraded = engine.SearchWinnow(*query, *profile, options);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->partial);
}

}  // namespace
}  // namespace pimento::core
