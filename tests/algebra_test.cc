#include <gtest/gtest.h>

#include "src/algebra/operators.h"
#include "src/index/collection.h"
#include "src/xml/parser.h"

namespace pimento::algebra {
namespace {

struct Fixture {
  explicit Fixture(std::string_view xml_text)
      : collection(Build(xml_text)), scorer(&collection) {
    ctx.collection = &collection;
    ctx.scorer = &scorer;
  }

  static index::Collection Build(std::string_view xml_text) {
    auto doc = xml::ParseXml(xml_text);
    EXPECT_TRUE(doc.ok()) << doc.status().ToString();
    return index::Collection::Build(std::move(doc).value());
  }

  std::vector<Answer> Drain(Operator& op) {
    std::vector<Answer> out;
    Answer a;
    while (op.Next(&a)) out.push_back(a);
    return out;
  }

  index::Collection collection;
  score::Scorer scorer;
  ExecContext ctx;
};

constexpr const char* kCars = R"(
<dealer>
  <car><description>good condition in NYC</description><price>500</price>
       <color>red</color><mileage>90000</mileage></car>
  <car><description>good condition low mileage</description><price>1500</price>
       <color>black</color><mileage>20000</mileage></car>
  <car><description>rusty</description><price>300</price>
       <color>red</color><mileage>150000</mileage></car>
</dealer>
)";

TEST(ScanOpTest, EmitsAllElementsOfTag) {
  Fixture f(kCars);
  ScanOp scan(f.ctx, "car", 0);
  auto answers = f.Drain(scan);
  EXPECT_EQ(answers.size(), 3u);
  for (const Answer& a : answers) {
    EXPECT_EQ(f.collection.doc().node(a.node).tag, "car");
    EXPECT_EQ(a.s, 0.0);
    EXPECT_EQ(a.k, 0.0);
  }
}

TEST(ScanOpTest, ResetRestarts) {
  Fixture f(kCars);
  ScanOp scan(f.ctx, "car", 0);
  EXPECT_EQ(f.Drain(scan).size(), 3u);
  EXPECT_EQ(f.Drain(scan).size(), 0u);
  scan.Reset();
  EXPECT_EQ(f.Drain(scan).size(), 3u);
}

TEST(ScanOpTest, UnknownTagEmitsNothing) {
  Fixture f(kCars);
  ScanOp scan(f.ctx, "boat", 0);
  EXPECT_TRUE(f.Drain(scan).empty());
}

TEST(ResolveNavTest, DownChildAndDescendant) {
  Fixture f("<a><b><c/></b><c/></a>");
  NavPath child = {{NavStep::Kind::kDownChild, "c"}};
  NavPath desc = {{NavStep::Kind::kDownDescendant, "c"}};
  EXPECT_EQ(ResolveNav(f.ctx, 0, child).size(), 1u);
  EXPECT_EQ(ResolveNav(f.ctx, 0, desc).size(), 2u);
}

TEST(ResolveNavTest, UpSteps) {
  Fixture f("<a><b><c/></b></a>");
  xml::NodeId c = f.collection.doc().FindDescendant(0, "c");
  NavPath up_child = {{NavStep::Kind::kUpChild, "b"}};
  NavPath up_wrong = {{NavStep::Kind::kUpChild, "a"}};
  NavPath up_anc = {{NavStep::Kind::kUpDescendant, "a"}};
  EXPECT_EQ(ResolveNav(f.ctx, c, up_child).size(), 1u);
  EXPECT_TRUE(ResolveNav(f.ctx, c, up_wrong).empty());
  EXPECT_EQ(ResolveNav(f.ctx, c, up_anc).size(), 1u);
}

TEST(ResolveNavTest, MultiStepWithWildcard) {
  Fixture f("<a><b><x/></b><c><x/></c></a>");
  NavPath path = {{NavStep::Kind::kDownChild, "*"},
                  {NavStep::Kind::kDownChild, "x"}};
  EXPECT_EQ(ResolveNav(f.ctx, 0, path).size(), 2u);
}

TEST(ResolveNavTest, DeduplicatesTargets) {
  // Two b children lead to the same ancestor.
  Fixture f("<a><b/><b/></a>");
  xml::NodeId b1 = f.collection.tags().Elements("b")[0];
  xml::NodeId b2 = f.collection.tags().Elements("b")[1];
  (void)b1;
  NavPath up_down = {{NavStep::Kind::kUpDescendant, "a"},
                     {NavStep::Kind::kDownChild, "b"}};
  auto targets = ResolveNav(f.ctx, b2, up_down);
  EXPECT_EQ(targets.size(), 2u);  // both b's, each once
}

TEST(FtContainsOpTest, RequiredFiltersAndScores) {
  Fixture f(kCars);
  ScanOp scan(f.ctx, "car", 0);
  FtContainsOp ft(f.ctx, {{NavStep::Kind::kDownChild, "description"}},
                  f.collection.MakePhrase("good condition"),
                  /*required=*/true, 1.0);
  ft.set_input(&scan);
  auto answers = f.Drain(ft);
  ASSERT_EQ(answers.size(), 2u);
  for (const Answer& a : answers) EXPECT_GT(a.s, 0.0);
  EXPECT_EQ(ft.stats().pruned, 1);
}

TEST(FtContainsOpTest, OptionalNeverFilters) {
  Fixture f(kCars);
  ScanOp scan(f.ctx, "car", 0);
  FtContainsOp ft(f.ctx, {{NavStep::Kind::kDownChild, "description"}},
                  f.collection.MakePhrase("low mileage"),
                  /*required=*/false, 1.0);
  ft.set_input(&scan);
  auto answers = f.Drain(ft);
  ASSERT_EQ(answers.size(), 3u);
  int scored = 0;
  for (const Answer& a : answers) {
    if (a.s > 0) ++scored;
  }
  EXPECT_EQ(scored, 1);
}

TEST(FtContainsOpTest, BoostScalesScoreAndBound) {
  Fixture f(kCars);
  index::Phrase p = f.collection.MakePhrase("good condition");
  FtContainsOp plain(f.ctx, {}, p, true, 1.0);
  FtContainsOp boosted(f.ctx, {}, p, true, 2.0);
  EXPECT_DOUBLE_EQ(boosted.MaxSContribution(),
                   2.0 * plain.MaxSContribution());
}

TEST(ValuePredOpTest, NumericFilter) {
  Fixture f(kCars);
  ScanOp scan(f.ctx, "car", 0);
  tpq::ValuePredicate pred;
  pred.op = tpq::RelOp::kLt;
  pred.number = 1000;
  ValuePredOp op(f.ctx, {{NavStep::Kind::kDownChild, "price"}}, pred,
                 /*required=*/true, 0.5);
  op.set_input(&scan);
  EXPECT_EQ(f.Drain(op).size(), 2u);  // 500 and 300
}

TEST(ValuePredOpTest, StringEquality) {
  Fixture f(kCars);
  ScanOp scan(f.ctx, "car", 0);
  tpq::ValuePredicate pred;
  pred.op = tpq::RelOp::kEq;
  pred.numeric = false;
  pred.text = "red";
  ValuePredOp op(f.ctx, {{NavStep::Kind::kDownChild, "color"}}, pred,
                 /*required=*/true, 0.5);
  op.set_input(&scan);
  EXPECT_EQ(f.Drain(op).size(), 2u);
}

TEST(ValuePredOpTest, OptionalAddsBonus) {
  Fixture f(kCars);
  ScanOp scan(f.ctx, "car", 0);
  tpq::ValuePredicate pred;
  pred.op = tpq::RelOp::kLt;
  pred.number = 1000;
  ValuePredOp op(f.ctx, {{NavStep::Kind::kDownChild, "price"}}, pred,
                 /*required=*/false, 0.5);
  op.set_input(&scan);
  auto answers = f.Drain(op);
  ASSERT_EQ(answers.size(), 3u);
  int bonused = 0;
  for (const Answer& a : answers) {
    if (a.s == 0.5) ++bonused;
  }
  EXPECT_EQ(bonused, 2);
  EXPECT_DOUBLE_EQ(op.MaxSContribution(), 0.5);
}

TEST(ExistsOpTest, RequiredAndOptional) {
  Fixture f("<a><b><c/></b><b/></a>");
  ScanOp scan(f.ctx, "b", 0);
  ExistsOp required(f.ctx, {{NavStep::Kind::kDownChild, "c"}}, true, 0.0);
  required.set_input(&scan);
  EXPECT_EQ(f.Drain(required).size(), 1u);
  scan.Reset();
  ExistsOp optional(f.ctx, {{NavStep::Kind::kDownChild, "c"}}, false, 0.25);
  optional.set_input(&scan);
  auto answers = f.Drain(optional);
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_DOUBLE_EQ(answers[0].s + answers[1].s, 0.25);
}

TEST(VorOpTest, AnnotatesValues) {
  Fixture f(kCars);
  ScanOp scan(f.ctx, "car", 1);
  profile::Vor rule;
  rule.tag = "car";
  rule.kind = profile::VorKind::kEqConst;
  rule.attr = "color";
  rule.const_value = "red";
  VorOp vor(f.ctx, rule, 0);
  vor.set_input(&scan);
  auto answers = f.Drain(vor);
  ASSERT_EQ(answers.size(), 3u);
  ASSERT_EQ(answers[0].vor.size(), 1u);
  EXPECT_TRUE(answers[0].vor[0].applicable);
  EXPECT_EQ(answers[0].vor[0].str.value(), "red");
  EXPECT_EQ(answers[1].vor[0].str.value(), "black");
}

TEST(VorOpTest, TagMismatchMarksInapplicable) {
  Fixture f(kCars);
  ScanOp scan(f.ctx, "car", 1);
  profile::Vor rule;
  rule.tag = "boat";
  rule.attr = "color";
  VorOp vor(f.ctx, rule, 0);
  vor.set_input(&scan);
  auto answers = f.Drain(vor);
  for (const Answer& a : answers) EXPECT_FALSE(a.vor[0].applicable);
}

TEST(VorOpTest, GroupAttribute) {
  Fixture f("<l><car><make>honda</make><hp>90</hp></car></l>");
  ScanOp scan(f.ctx, "car", 1);
  profile::Vor rule;
  rule.tag = "car";
  rule.kind = profile::VorKind::kCompareSameGroup;
  rule.attr = "hp";
  rule.group_attr = "make";
  rule.smaller_preferred = false;
  VorOp vor(f.ctx, rule, 0);
  vor.set_input(&scan);
  auto answers = f.Drain(vor);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].vor[0].group.value(), "honda");
  EXPECT_DOUBLE_EQ(answers[0].vor[0].num.value(), 90);
}

TEST(KorOpTest, AddsKScoreForMatchingTag) {
  Fixture f(kCars);
  ScanOp scan(f.ctx, "car", 0);
  profile::Kor kor;
  kor.tag = "car";
  kor.keyword = "NYC";
  KorOp op(f.ctx, kor, f.collection.MakePhrase("NYC"));
  op.set_input(&scan);
  auto answers = f.Drain(op);
  ASSERT_EQ(answers.size(), 3u);
  EXPECT_GT(answers[0].k, 0.0);
  EXPECT_EQ(answers[1].k, 0.0);
  EXPECT_EQ(answers[2].k, 0.0);
  EXPECT_GT(op.MaxKContribution(), 0.0);
}

TEST(SortOpTest, SortsByS) {
  RankContext rank({}, profile::RankOrder::kS);
  std::vector<Answer> input;
  for (double s : {1.0, 3.0, 2.0}) {
    Answer a;
    a.node = static_cast<xml::NodeId>(input.size());
    a.s = s;
    input.push_back(a);
  }
  MaterializedOp src(input);
  SortOp sort(&rank, SortOp::Param::kByS);
  sort.set_input(&src);
  Answer a;
  ASSERT_TRUE(sort.Next(&a));
  EXPECT_DOUBLE_EQ(a.s, 3.0);
  ASSERT_TRUE(sort.Next(&a));
  EXPECT_DOUBLE_EQ(a.s, 2.0);
  EXPECT_TRUE(sort.SortedOutput());
}

TEST(SortOpTest, RankOrderKVS) {
  RankContext rank({}, profile::RankOrder::kKVS);
  std::vector<Answer> input(3);
  input[0].node = 0;
  input[0].s = 9.0;
  input[0].k = 0.0;
  input[1].node = 1;
  input[1].s = 1.0;
  input[1].k = 5.0;
  input[2].node = 2;
  input[2].s = 2.0;
  input[2].k = 5.0;
  MaterializedOp src(input);
  SortOp sort(&rank, SortOp::Param::kByRank);
  sort.set_input(&src);
  // K dominates S; the K tie between nodes 1 and 2 breaks by S desc.
  Answer a;
  ASSERT_TRUE(sort.Next(&a));
  EXPECT_EQ(a.node, 2);
  ASSERT_TRUE(sort.Next(&a));
  EXPECT_EQ(a.node, 1);
  ASSERT_TRUE(sort.Next(&a));
  EXPECT_EQ(a.node, 0);
}

TEST(RankContextTest, KvsOrder) {
  RankContext rank({}, profile::RankOrder::kKVS);
  Answer hi_k;
  hi_k.node = 1;
  hi_k.k = 2.0;
  hi_k.s = 0.0;
  Answer hi_s;
  hi_s.node = 2;
  hi_s.k = 0.0;
  hi_s.s = 10.0;
  EXPECT_TRUE(rank.RankedBefore(hi_k, hi_s));
  EXPECT_FALSE(rank.RankedBefore(hi_s, hi_k));
}

TEST(RankContextTest, VorKeysFollowPriorities) {
  profile::Vor red;
  red.name = "red";
  red.kind = profile::VorKind::kEqConst;
  red.attr = "color";
  red.const_value = "red";
  red.priority = 2;
  profile::Vor mileage;
  mileage.name = "m";
  mileage.kind = profile::VorKind::kCompare;
  mileage.attr = "mileage";
  mileage.smaller_preferred = true;
  mileage.priority = 1;
  RankContext rank({red, mileage}, profile::RankOrder::kKVS);
  Answer a;
  a.vor.resize(2);
  a.vor[0].applicable = true;
  a.vor[0].str = "red";
  a.vor[1].applicable = true;
  a.vor[1].num = 50.0;
  auto keys = rank.VorKeys(a);
  ASSERT_EQ(keys.size(), 2u);
  // Priority order puts mileage first.
  EXPECT_DOUBLE_EQ(keys[0], 50.0);
  EXPECT_DOUBLE_EQ(keys[1], 0.0);
}

TEST(RankContextTest, TieBreaksByDocumentOrder) {
  RankContext rank({}, profile::RankOrder::kS);
  Answer a;
  a.node = 1;
  Answer b;
  b.node = 2;
  EXPECT_TRUE(rank.RankedBefore(a, b));
  EXPECT_FALSE(rank.RankedBefore(b, a));
}

}  // namespace
}  // namespace pimento::algebra
