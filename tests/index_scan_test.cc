// The postings-anchored index scan (IndexScanOp) versus the legacy blind
// tag scan: the two access paths must produce byte-identical ranked
// answers at every Strategy x RankOrder combination, and the block-max
// score bound must actually skip blocks on threshold-friendly corpora.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/data/car_gen.h"
#include "src/data/xmark_gen.h"
#include "src/exec/phrase_count_cache.h"
#include "src/plan/planner.h"

namespace pimento::core {
namespace {

const plan::Strategy kStrategies[] = {
    plan::Strategy::kNaive, plan::Strategy::kInterleave,
    plan::Strategy::kInterleaveSorted, plan::Strategy::kPush};

const char* kRankLines[] = {"rank K,V,S", "rank V,K,S", "rank S"};

std::string ProfileWith(const char* rank_line, const char* tag) {
  std::string out = "profile t\n";
  out += rank_line;
  out += "\n";
  out += "kor k1: tag=" + std::string(tag) + " prefer ftcontains(\"NYC\")\n";
  out += "vor v1: tag=" + std::string(tag) + " prefer age = \"33\"\n";
  return out;
}

void ExpectIdenticalAcrossScanModes(const SearchEngine& engine,
                                    const std::string& query,
                                    const std::string& profile) {
  for (plan::Strategy strategy : kStrategies) {
    SearchOptions options;
    options.k = 7;
    options.strategy = strategy;
    options.scan_mode = plan::ScanMode::kTagScan;
    auto tag = engine.Search(query, profile, options);
    ASSERT_TRUE(tag.ok()) << tag.status().ToString();
    // kPostingsScan always takes the anchored path; kAuto may cost-gate
    // back to the tag scan — identical answers required either way.
    for (plan::ScanMode mode :
         {plan::ScanMode::kPostingsScan, plan::ScanMode::kAuto}) {
      options.scan_mode = mode;
      auto anchored = engine.Search(query, profile, options);
      ASSERT_TRUE(anchored.ok()) << anchored.status().ToString();
      ASSERT_EQ(tag->answers.size(), anchored->answers.size())
          << query << " strategy " << plan::StrategyName(strategy);
      for (size_t i = 0; i < tag->answers.size(); ++i) {
        EXPECT_EQ(tag->answers[i].node, anchored->answers[i].node);
        // Bit-identical scores, not just approximately equal: the anchored
        // path must evaluate the same arithmetic in the same order.
        EXPECT_EQ(tag->answers[i].s, anchored->answers[i].s);
        EXPECT_EQ(tag->answers[i].k, anchored->answers[i].k);
        EXPECT_EQ(tag->answers[i].vor_keys, anchored->answers[i].vor_keys);
      }
    }
  }
}

TEST(IndexScanTest, ByteIdenticalOnCarSaleAcrossStrategiesAndRankOrders) {
  SearchEngine engine(index::Collection::Build(
      data::GenerateCarDealer({.num_cars = 80})));
  const char* queries[] = {
      "//car[ftcontains(., \"good condition\")]",
      "//car[./description[ftcontains(., \"best bid\")]]",
      "//car[ftcontains(., \"good condition\") and ftcontains(., \"NYC\")]",
  };
  for (const char* rank : kRankLines) {
    for (const char* query : queries) {
      ExpectIdenticalAcrossScanModes(engine, query, ProfileWith(rank, "car"));
    }
  }
}

TEST(IndexScanTest, ByteIdenticalOnXmarkAcrossStrategiesAndRankOrders) {
  SearchEngine engine(index::Collection::Build(
      data::GenerateXmark({.target_bytes = 192u << 10})));
  const char* queries[] = {
      "//person[.//business[ftcontains(., \"Yes\")]]",
      "//person[ftcontains(., \"Phoenix\")]",
  };
  for (const char* rank : kRankLines) {
    for (const char* query : queries) {
      ExpectIdenticalAcrossScanModes(engine, query,
                                     ProfileWith(rank, "person"));
    }
  }
}

TEST(IndexScanTest, PlanDescriptionShowsIndexScan) {
  SearchEngine engine(index::Collection::Build(
      data::GenerateCarDealer({.num_cars = 20})));
  SearchOptions options;
  options.k = 5;
  options.scan_mode = plan::ScanMode::kPostingsScan;
  auto result =
      engine.Search("//car[ftcontains(., \"good condition\")]", options);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->plan_description.find("iscan("), std::string::npos)
      << result->plan_description;

  options.scan_mode = plan::ScanMode::kTagScan;
  auto legacy =
      engine.Search("//car[ftcontains(., \"good condition\")]", options);
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy->plan_description.find("iscan("), std::string::npos);
}

TEST(IndexScanTest, AutoModeCostGatesNonSelectiveAnchors) {
  // Every item contains "w", so anchoring on it generates as many
  // candidates as the blind scan visits: kAuto must fall back, while
  // kPostingsScan still forces the anchored path.
  std::string xml = "<r>";
  for (int i = 0; i < 50; ++i) xml += "<item>w filler</item>";
  xml += "</r>";
  auto engine = SearchEngine::FromXml(xml);
  ASSERT_TRUE(engine.ok());
  const char* query = "//item[ftcontains(., \"w\")]";
  SearchOptions options;
  options.k = 5;
  auto gated = engine->Search(query, options);
  ASSERT_TRUE(gated.ok());
  EXPECT_EQ(gated->plan_description.find("iscan("), std::string::npos)
      << gated->plan_description;
  options.scan_mode = plan::ScanMode::kPostingsScan;
  auto forced = engine->Search(query, options);
  ASSERT_TRUE(forced.ok());
  EXPECT_NE(forced->plan_description.find("iscan("), std::string::npos)
      << forced->plan_description;
}

TEST(IndexScanTest, FallsBackToTagScanWithoutRequiredPhrase) {
  SearchEngine engine(index::Collection::Build(
      data::GenerateCarDealer({.num_cars = 20})));
  SearchOptions options;
  options.k = 5;
  // No keyword predicate at all: nothing can anchor the scan.
  auto plain = engine.Search("//car", options);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->plan_description.find("iscan("), std::string::npos)
      << plain->plan_description;
  EXPECT_NE(plain->plan_description.find("scan("), std::string::npos);

  // An optional phrase ('?' marker) must not anchor either — answers
  // without it are still answers.
  auto optional_only = engine.Search(
      "//car[ftcontains(., \"good condition\")?]", options);
  ASSERT_TRUE(optional_only.ok()) << optional_only.status().ToString();
  EXPECT_EQ(optional_only->plan_description.find("iscan("), std::string::npos)
      << optional_only->plan_description;
}

TEST(IndexScanTest, ThresholdSkipsBlocksAndKeepsAnswersIdentical) {
  // 30 rich items (4 phrase hits each -> s = 0.8*idf) fill the top-k long
  // before the 500 poor items (1 hit -> 0.5*idf) are reached; under the
  // plain S rank order the k-th answer floor exceeds every poor block's
  // block-max bound, so those blocks are skipped wholesale.
  std::string xml = "<r>";
  for (int i = 0; i < 30; ++i) xml += "<item>w w w w</item>";
  for (int i = 0; i < 500; ++i) xml += "<item>w filler</item>";
  xml += "</r>";
  auto engine = SearchEngine::FromXml(xml);
  ASSERT_TRUE(engine.ok());

  SearchOptions options;
  options.k = 5;
  options.strategy = plan::Strategy::kPush;
  const char* profile = "profile p\nrank S\n";
  const char* query = "//item[ftcontains(., \"w\")]";

  options.scan_mode = plan::ScanMode::kTagScan;
  auto legacy = engine->Search(query, profile, options);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  EXPECT_EQ(legacy->stats.blocks_skipped, 0);

  options.scan_mode = plan::ScanMode::kPostingsScan;
  auto anchored = engine->Search(query, profile, options);
  ASSERT_TRUE(anchored.ok()) << anchored.status().ToString();
  EXPECT_GT(anchored->stats.blocks_skipped, 0) << anchored->stats.ToString();

  ASSERT_EQ(legacy->answers.size(), anchored->answers.size());
  for (size_t i = 0; i < legacy->answers.size(); ++i) {
    EXPECT_EQ(legacy->answers[i].node, anchored->answers[i].node);
    EXPECT_EQ(legacy->answers[i].s, anchored->answers[i].s);
  }
}

TEST(IndexScanTest, PhraseCountCacheServesRepeatedSearches) {
  SearchEngine engine(index::Collection::Build(
      data::GenerateCarDealer({.num_cars = 40})));
  const char* query = "//car[ftcontains(., \"good condition\")]";
  auto first = engine.Search(query, SearchOptions{.k = 5});
  ASSERT_TRUE(first.ok());
  auto before = engine.phrase_count_cache().GetStats();
  auto second = engine.Search(query, SearchOptions{.k = 5});
  ASSERT_TRUE(second.ok());
  auto after = engine.phrase_count_cache().GetStats();
  EXPECT_GT(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  ASSERT_EQ(first->answers.size(), second->answers.size());
  for (size_t i = 0; i < first->answers.size(); ++i) {
    EXPECT_EQ(first->answers[i].node, second->answers[i].node);
    EXPECT_EQ(first->answers[i].s, second->answers[i].s);
  }
}

}  // namespace
}  // namespace pimento::core
