#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "src/algebra/operators.h"
#include "src/algebra/topk_prune.h"

namespace pimento::algebra {
namespace {

Answer MakeAnswer(xml::NodeId node, double s, double k = 0.0) {
  Answer a;
  a.node = node;
  a.s = s;
  a.k = k;
  return a;
}

std::vector<Answer> Drain(Operator& op) {
  std::vector<Answer> out;
  Answer a;
  while (op.Next(&a)) out.push_back(a);
  return out;
}

// ---------- Algorithm 1 (S only) ----------

TEST(Alg1Test, NoPruningUntilListFull) {
  RankContext rank({}, profile::RankOrder::kS);
  std::vector<Answer> input = {MakeAnswer(0, 1), MakeAnswer(1, 2),
                               MakeAnswer(2, 3)};
  TopkPruneOptions opts;
  opts.k = 5;
  opts.alg = PruneAlg::kAlg1;
  MaterializedOp src(input);
  TopkPruneOp prune(&rank, opts);
  prune.set_input(&src);
  EXPECT_EQ(Drain(prune).size(), 3u);
  EXPECT_EQ(prune.pruned(), 0);
}

TEST(Alg1Test, PrunesWhenBoundCannotBeat) {
  RankContext rank({}, profile::RankOrder::kS);
  // k=2; first two answers score 10 and 9. With zero bound, an answer of 5
  // can never make the top-2.
  std::vector<Answer> input = {MakeAnswer(0, 10), MakeAnswer(1, 9),
                               MakeAnswer(2, 5), MakeAnswer(3, 9.5)};
  TopkPruneOptions opts;
  opts.k = 2;
  opts.alg = PruneAlg::kAlg1;
  opts.query_score_bound = 0.0;
  MaterializedOp src(input);
  TopkPruneOp prune(&rank, opts);
  prune.set_input(&src);
  auto out = Drain(prune);
  ASSERT_EQ(out.size(), 3u);  // 10, 9, 9.5 survive; 5 pruned
  EXPECT_EQ(prune.pruned(), 1);
}

TEST(Alg1Test, BoundKeepsPotentialWinners) {
  RankContext rank({}, profile::RankOrder::kS);
  std::vector<Answer> input = {MakeAnswer(0, 10), MakeAnswer(1, 9),
                               MakeAnswer(2, 5)};
  TopkPruneOptions opts;
  opts.k = 2;
  opts.alg = PruneAlg::kAlg1;
  opts.query_score_bound = 100.0;  // downstream score could still win
  MaterializedOp src(input);
  TopkPruneOp prune(&rank, opts);
  prune.set_input(&src);
  EXPECT_EQ(Drain(prune).size(), 3u);
  EXPECT_EQ(prune.pruned(), 0);
}

TEST(Alg1Test, TieWithBoundZeroIsKept) {
  // An answer that can exactly tie the kth must be kept (document-order
  // tie-breaking could favor it).
  RankContext rank({}, profile::RankOrder::kS);
  std::vector<Answer> input = {MakeAnswer(5, 10), MakeAnswer(6, 9),
                               MakeAnswer(1, 9)};
  TopkPruneOptions opts;
  opts.k = 2;
  opts.alg = PruneAlg::kAlg1;
  MaterializedOp src(input);
  TopkPruneOp prune(&rank, opts);
  prune.set_input(&src);
  EXPECT_EQ(Drain(prune).size(), 3u);
}

TEST(Alg1Test, BulkPruneStopsOnSortedInput) {
  RankContext rank({}, profile::RankOrder::kS);
  std::vector<Answer> input;
  for (int i = 0; i < 100; ++i) {
    input.push_back(MakeAnswer(i, 100.0 - i));
  }
  TopkPruneOptions opts;
  opts.k = 3;
  opts.alg = PruneAlg::kAlg1;
  opts.sorted_input = true;
  MaterializedOp src(input);
  TopkPruneOp prune(&rank, opts);
  prune.set_input(&src);
  auto out = Drain(prune);
  EXPECT_EQ(out.size(), 3u);
  // The operator stopped pulling after the first prune: far fewer than 100
  // answers consumed.
  EXPECT_LE(prune.stats().consumed, 5);
}

TEST(FinalCutTest, EmitsExactlyK) {
  RankContext rank({}, profile::RankOrder::kS);
  std::vector<Answer> input;
  for (int i = 0; i < 10; ++i) input.push_back(MakeAnswer(i, 10.0 - i));
  TopkPruneOptions opts;
  opts.k = 4;
  opts.final_cut = true;
  opts.sorted_input = true;
  MaterializedOp src(input);
  TopkPruneOp prune(&rank, opts);
  prune.set_input(&src);
  auto out = Drain(prune);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].node, 0);
  EXPECT_EQ(out[3].node, 3);
}

// ---------- Algorithm 2 (V, S) ----------

struct VorFixture {
  VorFixture() {
    profile::Vor red;
    red.name = "red";
    red.kind = profile::VorKind::kEqConst;
    red.attr = "color";
    red.const_value = "red";
    rank = RankContext({red}, profile::RankOrder::kKVS);
  }

  Answer Car(xml::NodeId node, const char* color, double s) {
    Answer a = MakeAnswer(node, s);
    a.vor.resize(1);
    a.vor[0].applicable = true;
    a.vor[0].str = color;
    return a;
  }

  RankContext rank;
};

TEST(Alg2Test, PreferredAnswerNeverPrunedDespiteLowScore) {
  VorFixture f;
  // Top-1 is a non-red car with huge S; a red car with tiny S arrives.
  std::vector<Answer> input = {f.Car(0, "black", 100), f.Car(1, "black", 90),
                               f.Car(2, "red", 0.1)};
  TopkPruneOptions opts;
  opts.k = 2;
  opts.alg = PruneAlg::kAlg2;
  MaterializedOp src(input);
  TopkPruneOp prune(&f.rank, opts);
  prune.set_input(&src);
  auto out = Drain(prune);
  ASSERT_EQ(out.size(), 3u);  // the red car survives
  EXPECT_EQ(prune.pruned(), 0);
}

TEST(Alg2Test, DominatedAnswerPrunedRegardlessOfScoreBound) {
  VorFixture f;
  // List holds red cars; a non-red car can never beat them (V precedes S).
  std::vector<Answer> input = {f.Car(0, "red", 1), f.Car(1, "red", 2),
                               f.Car(2, "black", 1000)};
  TopkPruneOptions opts;
  opts.k = 2;
  opts.alg = PruneAlg::kAlg2;
  opts.query_score_bound = 1e9;
  MaterializedOp src(input);
  TopkPruneOp prune(&f.rank, opts);
  prune.set_input(&src);
  auto out = Drain(prune);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(prune.pruned(), 1);
}

TEST(Alg2Test, EqualVorFallsBackToAlgorithm1) {
  VorFixture f;
  std::vector<Answer> input = {f.Car(0, "red", 10), f.Car(1, "red", 9),
                               f.Car(2, "red", 1)};
  TopkPruneOptions opts;
  opts.k = 2;
  opts.alg = PruneAlg::kAlg2;
  opts.query_score_bound = 0.0;
  MaterializedOp src(input);
  TopkPruneOp prune(&f.rank, opts);
  prune.set_input(&src);
  auto out = Drain(prune);
  EXPECT_EQ(out.size(), 2u);  // the S=1 red car pruned by the S rule
  EXPECT_EQ(prune.pruned(), 1);
}

TEST(Alg2Test, PartialOrderModeIncomparableFallsBackToAlg1) {
  // Form-3 rule (same make): cars of different makes are incomparable.
  profile::Vor hp;
  hp.name = "hp";
  hp.kind = profile::VorKind::kCompareSameGroup;
  hp.attr = "hp";
  hp.group_attr = "make";
  hp.smaller_preferred = false;
  RankContext rank({hp}, profile::RankOrder::kKVS);
  auto car = [&](xml::NodeId node, const char* make, double hp_val,
                 double s) {
    Answer a = MakeAnswer(node, s);
    a.vor.resize(1);
    a.vor[0].applicable = true;
    a.vor[0].group = make;
    a.vor[0].num = hp_val;
    return a;
  };
  std::vector<Answer> input = {car(0, "honda", 200, 10),
                               car(1, "honda", 150, 9),
                               car(2, "mustang", 300, 1)};
  TopkPruneOptions opts;
  opts.k = 2;
  opts.alg = PruneAlg::kAlg2;
  opts.vor_mode = VorCompareMode::kPartialOrder;
  opts.query_score_bound = 0.0;
  MaterializedOp src(input);
  TopkPruneOp prune(&rank, opts);
  prune.set_input(&src);
  auto out = Drain(prune);
  // The mustang is incomparable to the hondas; Algorithm 1 with S=1 vs
  // kth.S=9 prunes it.
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(prune.pruned(), 1);
}

// ---------- Algorithm 3 (K, V, S) ----------

TEST(Alg3Test, KorBoundPrunes) {
  RankContext rank({}, profile::RankOrder::kKVS);
  std::vector<Answer> input = {MakeAnswer(0, 0, 10), MakeAnswer(1, 0, 9),
                               MakeAnswer(2, 0, 3)};
  TopkPruneOptions opts;
  opts.k = 2;
  opts.alg = PruneAlg::kAlg3;
  opts.kor_score_bound = 2.0;  // 3 + 2 < 9: prune
  MaterializedOp src(input);
  TopkPruneOp prune(&rank, opts);
  prune.set_input(&src);
  EXPECT_EQ(Drain(prune).size(), 2u);
  EXPECT_EQ(prune.pruned(), 1);
}

TEST(Alg3Test, KorBoundKeepsReachableAnswers) {
  RankContext rank({}, profile::RankOrder::kKVS);
  std::vector<Answer> input = {MakeAnswer(0, 0, 10), MakeAnswer(1, 0, 9),
                               MakeAnswer(2, 0, 8)};
  TopkPruneOptions opts;
  opts.k = 2;
  opts.alg = PruneAlg::kAlg3;
  opts.kor_score_bound = 2.0;  // 8 + 2 >= 9: keep
  MaterializedOp src(input);
  TopkPruneOp prune(&rank, opts);
  prune.set_input(&src);
  EXPECT_EQ(Drain(prune).size(), 3u);
}

TEST(Alg3Test, ZeroBoundComparesFinalK) {
  RankContext rank({}, profile::RankOrder::kKVS);
  std::vector<Answer> input = {MakeAnswer(0, 1, 5), MakeAnswer(1, 1, 4),
                               MakeAnswer(2, 100, 3)};
  TopkPruneOptions opts;
  opts.k = 2;
  opts.alg = PruneAlg::kAlg3;
  opts.kor_score_bound = 0.0;
  MaterializedOp src(input);
  TopkPruneOp prune(&rank, opts);
  prune.set_input(&src);
  // K=3 < kth.K=4 and K is final: pruned despite S=100.
  EXPECT_EQ(Drain(prune).size(), 2u);
  EXPECT_EQ(prune.pruned(), 1);
}

TEST(Alg3Test, ZeroBoundEqualKFallsToVS) {
  VorFixture f;
  std::vector<Answer> input = {f.Car(0, "red", 5), f.Car(1, "red", 4),
                               f.Car(2, "black", 100)};
  for (Answer& a : input) a.k = 7.0;  // equal K everywhere
  TopkPruneOptions opts;
  opts.k = 2;
  opts.alg = PruneAlg::kAlg3;
  opts.kor_score_bound = 0.0;
  opts.query_score_bound = 1e9;
  MaterializedOp src(input);
  TopkPruneOp prune(&f.rank, opts);
  prune.set_input(&src);
  // Equal K → Algorithm 2 → non-red dominated by two red cars → pruned.
  EXPECT_EQ(Drain(prune).size(), 2u);
}

// ---------- the V,K,S variant ----------

TEST(AlgVksTest, VDominatesKAndS) {
  VorFixture f;
  // kVKS list order: V first. A non-red car with huge K/S is pruned once
  // the list holds k red cars.
  std::vector<Answer> input = {f.Car(0, "red", 1), f.Car(1, "red", 2),
                               f.Car(2, "black", 1000)};
  input[2].k = 1000;
  TopkPruneOptions opts;
  opts.k = 2;
  opts.alg = PruneAlg::kAlgVks;
  opts.kor_score_bound = 1e9;
  opts.query_score_bound = 1e9;
  MaterializedOp src(input);
  TopkPruneOp prune(&f.rank, opts);
  prune.set_input(&src);
  EXPECT_EQ(Drain(prune).size(), 2u);
  EXPECT_EQ(prune.pruned(), 1);
}

TEST(AlgVksTest, EqualVFallsToKorBound) {
  VorFixture f;
  std::vector<Answer> input = {f.Car(0, "red", 0), f.Car(1, "red", 0),
                               f.Car(2, "red", 0)};
  input[0].k = 10;
  input[1].k = 9;
  input[2].k = 3;
  TopkPruneOptions opts;
  opts.k = 2;
  opts.alg = PruneAlg::kAlgVks;
  opts.kor_score_bound = 2.0;  // 3 + 2 < 9: prune
  MaterializedOp src(input);
  TopkPruneOp prune(&f.rank, opts);
  prune.set_input(&src);
  EXPECT_EQ(Drain(prune).size(), 2u);
  EXPECT_EQ(prune.pruned(), 1);
}

TEST(AlgVksTest, PreferredVAlwaysKept) {
  VorFixture f;
  std::vector<Answer> input = {f.Car(0, "black", 100), f.Car(1, "black", 90),
                               f.Car(2, "red", 0)};
  TopkPruneOptions opts;
  opts.k = 2;
  opts.alg = PruneAlg::kAlgVks;
  MaterializedOp src(input);
  TopkPruneOp prune(&f.rank, opts);
  prune.set_input(&src);
  EXPECT_EQ(Drain(prune).size(), 3u);
  EXPECT_EQ(prune.pruned(), 0);
}

// ---------- soundness property ----------
//
// For random inputs, pruning must never change the final top-k: feed the
// same stream through (a) sort + final cut and (b) topkPrune + sort +
// final cut; results must agree. The prune's bounds are set to the true
// remaining contribution (zero here, since scores are final).

class SoundnessTest
    : public ::testing::TestWithParam<std::tuple<int, profile::RankOrder>> {
};

TEST_P(SoundnessTest, PruningPreservesTopK) {
  const auto& [seed, order] = GetParam();
  std::mt19937 rng(seed);
  profile::Vor red;
  red.name = "red";
  red.kind = profile::VorKind::kEqConst;
  red.attr = "color";
  red.const_value = "red";
  RankContext rank({red}, order);

  std::uniform_real_distribution<double> score(0, 10);
  std::uniform_int_distribution<int> coin(0, 1);
  std::vector<Answer> input;
  for (int i = 0; i < 200; ++i) {
    Answer a = MakeAnswer(i, score(rng), std::floor(score(rng)));
    a.vor.resize(1);
    a.vor[0].applicable = true;
    a.vor[0].str = coin(rng) != 0 ? "red" : "black";
    input.push_back(a);
  }
  const int k = 7;

  auto run = [&](bool with_prune) {
    MaterializedOp src(input);
    TopkPruneOptions popts;
    popts.k = k;
    popts.alg = order == profile::RankOrder::kKVS ? PruneAlg::kAlg3
                                                  : PruneAlg::kAlgVks;
    TopkPruneOp prune(&rank, popts);
    SortOp sort(&rank, SortOp::Param::kByRank);
    TopkPruneOptions fopts;
    fopts.k = k;
    fopts.final_cut = true;
    fopts.sorted_input = true;
    TopkPruneOp final_cut(&rank, fopts);
    if (with_prune) {
      prune.set_input(&src);
      sort.set_input(&prune);
    } else {
      sort.set_input(&src);
    }
    final_cut.set_input(&sort);
    std::vector<xml::NodeId> nodes;
    Answer a;
    while (final_cut.Next(&a)) nodes.push_back(a.node);
    return nodes;
  };

  auto pruned = run(true);
  auto naive = run(false);
  EXPECT_EQ(pruned, naive);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SoundnessTest,
    ::testing::Combine(::testing::Range(1, 21),
                       ::testing::Values(profile::RankOrder::kKVS,
                                         profile::RankOrder::kVKS)));

}  // namespace
}  // namespace pimento::algebra
