// Admission control & overload resilience: the bounded admission queue,
// per-client quotas, deadline-aware queue shedding, the degradation
// ladder, the circuit breaker's pinned state transitions, the profile
// store's quarantine-on-corruption, and the worker pool's bounded queue.

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "src/common/backoff.h"
#include "src/common/fault_injector.h"
#include "src/core/engine.h"
#include "src/data/car_gen.h"
#include "src/exec/admission_controller.h"
#include "src/exec/circuit_breaker.h"
#include "src/exec/profile_store.h"
#include "src/exec/worker_pool.h"
#include "src/index/collection.h"
#include "src/index/persist.h"

namespace pimento {
namespace {

using core::BatchOptions;
using core::BatchResult;
using core::SearchEngine;
using core::SearchRequest;
using exec::AdmissionConfig;
using exec::AdmissionController;
using exec::AdmissionDecision;
using exec::CircuitBreaker;
using exec::DegradeTier;

constexpr const char* kCarQuery =
    "//car[./description[ftcontains(., \"good condition\")] and "
    "./price < 5000]";

SearchEngine CarEngine(int cars = 30) {
  data::CarGenOptions gen;
  gen.num_cars = cars;
  return SearchEngine(index::Collection::Build(data::GenerateCarDealer(gen)));
}

struct FaultGuard {
  ~FaultGuard() { FaultInjector::Instance().DisarmAll(); }
};

// --- backoff / retry-hint plumbing ---

TEST(BackoffTest, DelaysStayWithinPolicyBounds) {
  RetryPolicy policy(/*attempts=*/1, /*base=*/2.0, /*cap=*/20.0,
                     /*jitter=*/3.0);
  DecorrelatedJitter jitter(policy, /*seed=*/42);
  double prev = 0.0;
  bool grew = false;
  for (int i = 0; i < 200; ++i) {
    double d = jitter.NextDelayMs();
    ASSERT_GE(d, policy.base_ms);
    ASSERT_LE(d, policy.cap_ms);
    if (d > prev) grew = true;
    prev = d;
  }
  EXPECT_TRUE(grew) << "decorrelated jitter never grew past its base";
  // Reset returns the growth to the base band: the next delay is bounded
  // by base * spread again, however large the sequence had grown.
  jitter.Reset();
  double after_reset = jitter.NextDelayMs();
  EXPECT_GE(after_reset, policy.base_ms);
  EXPECT_LE(after_reset, policy.base_ms * policy.spread);
}

TEST(AdmissionTest, RetryAfterMsParsesTheStatusHint) {
  EXPECT_EQ(exec::RetryAfterMsFromStatus(
                Status::Unavailable("queue full; retry_after_ms=42")),
            42);
  EXPECT_EQ(exec::RetryAfterMsFromStatus(Status::Unavailable("no hint")), 0);
  EXPECT_EQ(exec::RetryAfterMsFromStatus(Status::OK()), 0);
}

// --- admission controller gates ---

TEST(AdmissionTest, BoundedQueueShedsWithTypedStatusAndRetryHint) {
  AdmissionConfig config;
  config.max_queue_depth = 2;
  config.high_watermark = 100;  // ladder inert for this test
  AdmissionController controller(config);

  EXPECT_TRUE(controller.EnqueueAdmit("a").status.ok());
  EXPECT_TRUE(controller.EnqueueAdmit("b").status.ok());
  AdmissionDecision shed = controller.EnqueueAdmit("c");
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  EXPECT_GT(shed.retry_after_ms, 0);
  EXPECT_EQ(exec::RetryAfterMsFromStatus(shed.status), shed.retry_after_ms);

  const AdmissionController::Stats stats = controller.GetStats();
  EXPECT_EQ(stats.shed_capacity, 1);
  EXPECT_EQ(stats.queued, 2);
}

TEST(AdmissionTest, PerClientQuotaMetersOnlyNamedClients) {
  AdmissionConfig config;
  config.max_queue_depth = 100;
  config.high_watermark = 100;
  config.max_in_flight_per_client = 1;
  AdmissionController controller(config);

  EXPECT_TRUE(controller.EnqueueAdmit("alice").status.ok());
  AdmissionDecision over = controller.EnqueueAdmit("alice");
  EXPECT_EQ(over.status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(controller.EnqueueAdmit("bob").status.ok());
  // Anonymous traffic is not metered per-client.
  EXPECT_TRUE(controller.EnqueueAdmit("").status.ok());
  EXPECT_TRUE(controller.EnqueueAdmit("").status.ok());
  EXPECT_EQ(controller.GetStats().shed_quota, 1);

  // Releasing alice's resident request frees her quota slot.
  EXPECT_TRUE(controller.StartExecution("alice", 0.0, 0.0).status.ok());
  controller.Finish("alice");
  EXPECT_TRUE(controller.EnqueueAdmit("alice").status.ok());
}

TEST(AdmissionTest, DeadlineBurnedInQueueIsShedBeforeExecution) {
  AdmissionController controller(AdmissionConfig{});
  ASSERT_TRUE(controller.EnqueueAdmit("u").status.ok());
  AdmissionDecision start =
      controller.StartExecution("u", /*deadline_ms=*/10.0, /*queued_ms=*/25.0);
  EXPECT_EQ(start.status.code(), StatusCode::kUnavailable);
  EXPECT_GT(start.retry_after_ms, 0);
  const AdmissionController::Stats stats = controller.GetStats();
  EXPECT_EQ(stats.shed_queue_deadline, 1);
  EXPECT_EQ(stats.queued, 0);
  EXPECT_EQ(stats.executing, 0);  // the shed request needs no Finish

  // A request whose wait stayed inside the deadline executes normally.
  ASSERT_TRUE(controller.EnqueueAdmit("u").status.ok());
  EXPECT_TRUE(controller.StartExecution("u", 10.0, 3.0).status.ok());
  controller.Finish("u");
  EXPECT_EQ(controller.GetStats().admitted, 1);
}

TEST(AdmissionTest, LadderEscalatesUnderPressureAndRecovers) {
  AdmissionConfig config;
  config.max_queue_depth = 100;
  config.high_watermark = 1;  // any resident request is "pressure"
  config.low_watermark = 0;
  config.escalate_after = 1;
  config.deescalate_after = 2;  // hysteresis: two calm looks to step down
  AdmissionController controller(config);

  // Two residents: the second arrival observes occupancy 1 >= high and
  // escalates; draining the first observes occupancy 1 again (still high).
  ASSERT_TRUE(controller.EnqueueAdmit("").status.ok());
  EXPECT_EQ(controller.tier(), DegradeTier::kNormal);
  ASSERT_TRUE(controller.EnqueueAdmit("").status.ok());
  EXPECT_EQ(controller.tier(), DegradeTier::kNoTrace);
  ASSERT_TRUE(controller.StartExecution("", 0, 0).status.ok());
  ASSERT_TRUE(controller.StartExecution("", 0, 0).status.ok());
  controller.Finish("");  // occupancy 1: high again -> kForcePartial
  controller.Finish("");  // occupancy 0: low streak 1 of 2
  EXPECT_EQ(controller.tier(), DegradeTier::kForcePartial);

  // Idle traffic de-escalates one tier per `deescalate_after` calm
  // observations; each empty-system cycle contributes two (arrival+drain).
  for (int i = 0; i < 2 && controller.tier() != DegradeTier::kNormal; ++i) {
    ASSERT_TRUE(controller.EnqueueAdmit("").status.ok());
    ASSERT_TRUE(controller.StartExecution("", 0, 0).status.ok());
    controller.Finish("");
  }
  EXPECT_EQ(controller.tier(), DegradeTier::kNormal);
  EXPECT_GE(controller.GetStats().tier_transitions, 4);
}

TEST(AdmissionTest, ShedTierRejectsArrivalsOutright) {
  AdmissionConfig config;
  config.max_queue_depth = 4;
  config.high_watermark = 2;
  config.low_watermark = 0;
  config.escalate_after = 1;
  config.deescalate_after = 1;
  AdmissionController controller(config);

  // Two resident requests push occupancy to the high watermark; each later
  // arrival escalates one tier.
  ASSERT_TRUE(controller.EnqueueAdmit("").status.ok());
  ASSERT_TRUE(controller.EnqueueAdmit("").status.ok());
  std::vector<DegradeTier> seen;
  for (int i = 0; i < 4; ++i) {
    AdmissionDecision d = controller.EnqueueAdmit("");
    seen.push_back(controller.tier());
    if (d.status.ok()) {
      ASSERT_TRUE(controller.StartExecution("", 0, 0).status.ok());
    }
  }
  EXPECT_EQ(seen[0], DegradeTier::kNoTrace);
  EXPECT_EQ(seen[1], DegradeTier::kForcePartial);
  EXPECT_EQ(seen[2], DegradeTier::kTightBudgets);
  EXPECT_EQ(seen[3], DegradeTier::kShed);
  AdmissionDecision shed = controller.EnqueueAdmit("");
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  EXPECT_GE(controller.GetStats().shed_tier, 1);
}

// --- circuit breaker transition pins (fake clock) ---

TEST(CircuitBreakerTest, ClosedOpensHalfOpensAndCloses) {
  exec::BreakerConfig config;
  config.failure_threshold = 2;
  config.success_threshold = 2;
  config.cooldown_ms = 10.0;
  CircuitBreaker breaker(config);
  double now = 0.0;
  breaker.set_clock_for_test([&now] { return now; });

  // closed: failures below threshold keep it closed.
  EXPECT_TRUE(breaker.Allow());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure();  // threshold: trips open
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow());  // rejected during cooldown
  EXPECT_EQ(breaker.GetStats().opens, 1);

  // cooldown elapses: half-open, exactly one probe admitted.
  now = 1000.0;
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.Allow()) << "one probe at a time";
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen)
      << "success_threshold=2 needs a second probe";
  EXPECT_TRUE(breaker.Allow());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenFailureReopensImmediately) {
  exec::BreakerConfig config;
  config.failure_threshold = 1;
  config.cooldown_ms = 5.0;
  CircuitBreaker breaker(config);
  double now = 0.0;
  breaker.set_clock_for_test([&now] { return now; });

  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  now = 1000.0;
  EXPECT_TRUE(breaker.Allow());  // probe
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.GetStats().opens, 2);
  EXPECT_FALSE(breaker.Allow());
}

// --- profile store: retry, breaker, quarantine ---

TEST(ProfileStoreResilienceTest, QuarantineRenamesSickSegmentAndRecovers) {
  FaultGuard guard;
  const std::string path = ::testing::TempDir() + "/admission_quarantine.bin";
  std::remove(path.c_str());
  std::remove((path + ".quarantined").c_str());

  exec::ProfileStore::Resilience resilience;
  resilience.put_retry = RetryPolicy(/*attempts=*/1, 0.1, 1.0, 3.0);
  resilience.quarantine_after = 2;
  resilience.breaker.failure_threshold = 100;  // keep the breaker out of it
  auto store = exec::ProfileStore::Open(path, resilience);
  ASSERT_TRUE(store.ok());

  // One good record so the segment has content worth quarantining.
  ASSERT_TRUE((*store)->Put(1, 1, {"sr a: if true then add x"}, "blob").ok());

  FaultInjector::FaultSpec spec;
  spec.kind = FaultInjector::Kind::kError;
  spec.code = StatusCode::kIoError;
  FaultInjector::Instance().Arm("store.profile.put", spec);
  EXPECT_FALSE((*store)->Put(2, 1, {"r2"}, "b2").ok());
  EXPECT_EQ((*store)->GetStats().quarantines, 0) << "one failure is not sick";
  EXPECT_FALSE((*store)->Put(3, 1, {"r3"}, "b3").ok());
  EXPECT_EQ((*store)->GetStats().quarantines, 1)
      << "second consecutive failure quarantines the segment";

  // The sick segment was moved aside atomically; a fresh magic-only
  // segment took its place.
  std::ifstream quarantined((*store)->quarantined_path(), std::ios::binary);
  EXPECT_TRUE(quarantined.good());
  std::ifstream fresh(path, std::ios::binary | std::ios::ate);
  ASSERT_TRUE(fresh.good());
  EXPECT_EQ(static_cast<long>(fresh.tellg()), 8) << "magic-only fresh segment";

  // In-memory state still serves the pre-quarantine record...
  std::string got;
  EXPECT_TRUE((*store)->Get(
      1, 1, {exec::ProfileStore::RuleHash("sr a: if true then add x")}, &got));
  EXPECT_EQ(got, "blob");

  // ...and once the disk heals, appends land in the fresh segment and
  // survive a reopen.
  FaultInjector::Instance().DisarmAll();
  EXPECT_TRUE((*store)->Put(4, 1, {"r4"}, "b4").ok());
  auto reopened = exec::ProfileStore::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(
      (*reopened)->Get(4, 1, {exec::ProfileStore::RuleHash("r4")}, &got));
  EXPECT_EQ(got, "b4");
}

TEST(ProfileStoreResilienceTest, BreakerOpensSkipsPutsAndProbesClosed) {
  FaultGuard guard;
  const std::string path = ::testing::TempDir() + "/admission_breaker.bin";
  std::remove(path.c_str());

  exec::ProfileStore::Resilience resilience;
  resilience.put_retry = RetryPolicy(/*attempts=*/1, 0.1, 1.0, 3.0);
  resilience.quarantine_after = 0;  // isolate the breaker behavior
  resilience.breaker.failure_threshold = 2;
  resilience.breaker.success_threshold = 1;
  resilience.breaker.cooldown_ms = 5.0;
  auto store = exec::ProfileStore::Open(path, resilience);
  ASSERT_TRUE(store.ok());
  double now = 0.0;
  (*store)->set_breaker_clock_for_test([&now] { return now; });

  FaultInjector::FaultSpec spec;
  spec.kind = FaultInjector::Kind::kError;
  spec.code = StatusCode::kIoError;
  FaultInjector::Instance().Arm("store.profile.put", spec);
  EXPECT_EQ((*store)->Put(1, 1, {"r"}, "b").code(), StatusCode::kIoError);
  EXPECT_EQ((*store)->Put(2, 1, {"r"}, "b").code(), StatusCode::kIoError);
  EXPECT_EQ((*store)->GetBreakerStats().state, CircuitBreaker::State::kOpen);

  // Open breaker: Put short-circuits without touching the fault site.
  const int64_t hits_before =
      FaultInjector::Instance().HitCount("store.profile.put");
  EXPECT_EQ((*store)->Put(3, 1, {"r"}, "b").code(), StatusCode::kUnavailable);
  EXPECT_EQ(FaultInjector::Instance().HitCount("store.profile.put"),
            hits_before);
  EXPECT_EQ((*store)->GetStats().breaker_rejections, 1);

  // Cooldown elapses, the disk heals: the probe closes the breaker and the
  // write lands.
  FaultInjector::Instance().DisarmAll();
  now = 1000.0;
  EXPECT_TRUE((*store)->Put(4, 1, {"r"}, "b").ok());
  EXPECT_EQ((*store)->GetBreakerStats().state, CircuitBreaker::State::kClosed);
  std::string got;
  EXPECT_TRUE((*store)->Get(4, 1, {exec::ProfileStore::RuleHash("r")}, &got));
}

// --- worker pool bounded queue ---

TEST(WorkerPoolTest, BoundedQueueRejectsOverflow) {
  exec::WorkerPool pool(1, /*max_queue=*/1);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::atomic<int> ran{0};
  // Occupy the single worker...
  ASSERT_TRUE(pool.Submit([gate, &ran] {
    gate.wait();
    ran.fetch_add(1);
  }));
  // ...then fill the one queue slot. Polling for the first task to be
  // claimed keeps this deterministic on a single-core host.
  bool queued = false;
  for (int i = 0; i < 1000 && !queued; ++i) {
    queued = pool.Submit([gate, &ran] {
      gate.wait();
      ran.fetch_add(1);
    });
    if (!queued) SleepForMs(1.0);
  }
  ASSERT_TRUE(queued);
  // With the worker blocked and the queue full, the next Submit must be
  // rejected (bounded), never silently dropped or unboundedly queued.
  int64_t rejected_before = pool.rejected();
  bool accepted = pool.Submit([&ran] { ran.fetch_add(1); });
  if (!accepted) {
    EXPECT_GT(pool.rejected(), rejected_before);
  }
  release.set_value();
  pool.Wait();
  EXPECT_EQ(ran.load(), accepted ? 3 : 2);
}

// --- engine integration: self-admit, tiers, health ---

TEST(AdmissionEngineTest, ExecuteShedsTypedWhenSaturated) {
  SearchEngine engine = CarEngine();
  AdmissionConfig config;
  config.max_queue_depth = 0;  // degenerate: every arrival over capacity
  config.high_watermark = 100;
  engine.EnableAdmissionControl(config);

  SearchRequest request = SearchRequest::Text(kCarQuery);
  auto result = engine.Execute(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_GT(exec::RetryAfterMsFromStatus(result.status()), 0);

  obs::HealthReport health = engine.Health();
  EXPECT_TRUE(health.admission_enabled);
  EXPECT_EQ(health.shed_total, 1);
  EXPECT_GT(health.shed_rate, 0.0);
  EXPECT_NE(health.ToJson().find("\"shed_total\":1"), std::string::npos);
}

TEST(AdmissionEngineTest, DegradedTierStampsResultAndForcesPartial) {
  SearchEngine engine = CarEngine();
  AdmissionConfig config;
  config.max_queue_depth = 100;
  config.high_watermark = 0;  // synthetic pressure: every look escalates
  config.low_watermark = 0;
  config.escalate_after = 1;
  config.deescalate_after = 1;
  engine.EnableAdmissionControl(config);

  // With high_watermark=0 both the arrival and the completion observation
  // escalate, so each Execute climbs two tiers: run 1 executes at kNoTrace,
  // run 2 at kTightBudgets, and run 3 arrives at kShed and is rejected.
  SearchRequest request = SearchRequest::Text(kCarQuery);
  auto r1 = engine.Execute(request);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1->degrade_tier, DegradeTier::kNoTrace);
  auto r2 = engine.Execute(request);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->degrade_tier, DegradeTier::kTightBudgets);
  // kTightBudgets clamps to the (generous) degraded caps; the answers for
  // this small corpus are identical to the full-service run.
  ASSERT_EQ(r2->answers.size(), r1->answers.size());
  for (size_t i = 0; i < r1->answers.size(); ++i) {
    EXPECT_EQ(r1->answers[i].node, r2->answers[i].node);
    EXPECT_DOUBLE_EQ(r1->answers[i].s, r2->answers[i].s);
  }
  auto r3 = engine.Execute(request);
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.status().code(), StatusCode::kUnavailable);
  EXPECT_GT(exec::RetryAfterMsFromStatus(r3.status()), 0);

  EXPECT_EQ(engine.Health().degraded_total, 2);
  EXPECT_EQ(engine.admission_controller()->GetStats().admitted, 2);
  EXPECT_EQ(engine.Health().degrade_tier, "shed");
  EXPECT_FALSE(engine.Health().healthy());
}

TEST(AdmissionEngineTest, NoTraceTierDropsSamplingButHonorsExplicit) {
  SearchEngine engine = CarEngine();
  AdmissionConfig config;
  config.max_queue_depth = 100;
  config.high_watermark = 0;
  config.low_watermark = 0;
  config.escalate_after = 1;
  config.deescalate_after = 100;
  engine.EnableAdmissionControl(config);

  // Sampled tracing (every request) is dropped at kNoTrace...
  SearchRequest sampled = SearchRequest::Text(kCarQuery);
  sampled.trace.sample_one_in = 1;
  auto r1 = engine.Execute(sampled);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->degrade_tier, DegradeTier::kNoTrace);
  EXPECT_FALSE(r1->trace.enabled) << "sampling must be shed under pressure";

  // ...but an explicitly requested trace still records.
  SearchRequest explicit_trace = SearchRequest::Text(kCarQuery);
  explicit_trace.trace.enabled = true;
  auto r2 = engine.Execute(explicit_trace);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->trace.enabled);
}

// --- the queued-deadline satellite: a deadline that lapses in the batch
// queue is shed before a single operator Next() runs ---

TEST(AdmissionEngineTest, QueuedDeadlineExpiryShedsBeforeExecution) {
  FaultGuard guard;
  SearchEngine engine = CarEngine();
  AdmissionConfig config;
  config.max_queue_depth = 100;
  config.high_watermark = 100;  // ladder inert; this test is about gate 2
  engine.EnableAdmissionControl(config);

  // Baseline: how many scan steps does this query take alone? (A times=0
  // spec never fires but keeps the injector armed so traversals count.)
  FaultInjector::FaultSpec count_only;
  count_only.times = 0;
  FaultInjector::Instance().Arm("exec.scan.next", count_only);
  SearchRequest probe = SearchRequest::Text(kCarQuery);
  // The legacy tag scan drives ScanOp (the operator hosting the fault
  // site); the default plan anchors on postings instead.
  probe.options.scan_mode = plan::ScanMode::kTagScan;
  ASSERT_TRUE(engine.Execute(probe).ok());
  const int64_t scan_steps_single =
      FaultInjector::Instance().HitCount("exec.scan.next");
  ASSERT_GT(scan_steps_single, 0);
  FaultInjector::Instance().DisarmAll();

  // Item 0 is slowed by 40ms at its first scan step; items 1..3 carry a
  // 5ms deadline. On the single batch worker they wait behind item 0, so
  // their whole budget burns in the queue.
  FaultInjector::FaultSpec slow;
  slow.kind = FaultInjector::Kind::kSlow;
  slow.delay_ms = 40;
  slow.times = 1;
  FaultInjector::Instance().Arm("exec.scan.next", slow);

  std::vector<SearchRequest> requests;
  requests.push_back(SearchRequest::Text(kCarQuery));
  requests[0].client_id = "head-of-line";
  requests[0].options.scan_mode = plan::ScanMode::kTagScan;
  for (int i = 1; i < 4; ++i) {
    SearchRequest late = SearchRequest::Text(kCarQuery);
    late.client_id = "latecomer";
    late.options.scan_mode = plan::ScanMode::kTagScan;
    late.limits.deadline_ms = 5.0;
    late.trace.enabled = true;  // would record spans if it ever executed
    requests.push_back(late);
  }

  BatchOptions options;
  options.num_workers = 1;
  BatchResult batch = engine.BatchSearch(requests, options);

  ASSERT_TRUE(batch.items[0].status.ok())
      << batch.items[0].status.ToString();
  for (int i = 1; i < 4; ++i) {
    const core::BatchItem& item = batch.items[i];
    EXPECT_EQ(item.status.code(), StatusCode::kUnavailable)
        << "item " << i << ": " << item.status.ToString();
    EXPECT_GT(exec::RetryAfterMsFromStatus(item.status), 0) << "item " << i;
    EXPECT_FALSE(item.result.trace.enabled)
        << "a queue-shed request must never have started executing";
  }

  // The pin: scan-step traversals equal the single-request baseline —
  // the shed items drove zero operator Next() calls.
  EXPECT_EQ(FaultInjector::Instance().HitCount("exec.scan.next"),
            scan_steps_single);
  EXPECT_EQ(engine.admission_controller()->GetStats().shed_queue_deadline, 3);
}

// --- fault injector periodic arming (the chaos/overload "1%" knob) ---

TEST(FaultInjectorTest, EveryFiresPeriodically) {
  FaultGuard guard;
  FaultInjector::FaultSpec spec;
  spec.kind = FaultInjector::Kind::kError;
  spec.every = 3;
  FaultInjector::Instance().Arm("admission_test.every", spec);
  int fired = 0;
  for (int i = 0; i < 9; ++i) {
    if (!FaultInjector::Instance().Check("admission_test.every").ok()) {
      ++fired;
    }
  }
  EXPECT_EQ(fired, 3) << "every=3 fires on 1 of every 3 traversals";
}

// --- persist retry wrapper ---

TEST(PersistRetryTest, TransientSaveFaultIsRetriedToSuccess) {
  FaultGuard guard;
  data::CarGenOptions gen;
  gen.num_cars = 5;
  index::Collection collection =
      index::Collection::Build(data::GenerateCarDealer(gen));
  const std::string path = ::testing::TempDir() + "/admission_retry.idx";
  std::remove(path.c_str());

  // First attempt fails at open; the retry succeeds.
  FaultInjector::FaultSpec spec;
  spec.kind = FaultInjector::Kind::kError;
  spec.code = StatusCode::kIoError;
  spec.times = 1;
  FaultInjector::Instance().Arm("persist.save.open", spec);
  RetryPolicy policy(/*attempts=*/3, 0.1, 1.0, 3.0);
  Status saved = index::SaveCollectionWithRetry(collection, path, policy);
  EXPECT_TRUE(saved.ok()) << saved.ToString();
  auto loaded = index::LoadCollection(path);
  EXPECT_TRUE(loaded.ok());

  // A permanent fault still surfaces after the attempts are exhausted.
  FaultInjector::Instance().DisarmAll();
  FaultInjector::FaultSpec forever;
  forever.kind = FaultInjector::Kind::kError;
  forever.code = StatusCode::kIoError;
  FaultInjector::Instance().Arm("persist.save.open", forever);
  EXPECT_EQ(index::SaveCollectionWithRetry(collection, path, policy).code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace pimento
