#include "src/index/varint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace pimento::index {
namespace {

/// Restores the SIMD toggle on scope exit so a failing assertion cannot
/// leak a scalar-forced process into other tests.
class SimdToggleGuard {
 public:
  explicit SimdToggleGuard(bool enabled)
      : previous_(SetSimdVarintEnabled(enabled)) {}
  ~SimdToggleGuard() { SetSimdVarintEnabled(previous_); }

 private:
  bool previous_;
};

/// Decodes `data` with the path selected by `simd`; returns the decoder's
/// verdict and fills positions/end_pos.
bool DecodeWith(bool simd, const std::string& data, size_t count,
                std::vector<int32_t>* positions, size_t* end_pos) {
  SimdToggleGuard guard(simd);
  positions->clear();
  *end_pos = 0;
  return DecodeDeltas(data, end_pos, count, positions);
}

TEST(VarintSimdTest, RoundTripSmallGapsTakesFastPath) {
  if (!SimdVarintAvailable()) GTEST_SKIP() << "no SSSE3 on this host";
  // 64 positions with gap 1..3: every byte single-byte, SIMD all the way.
  std::vector<int32_t> plist;
  int32_t p = 0;
  for (int i = 0; i < 64; ++i) {
    p += 1 + (i % 3);
    plist.push_back(p);
  }
  std::string data;
  EncodeDeltas(plist, &data);
  std::vector<int32_t> scalar, simd;
  size_t scalar_end = 0, simd_end = 0;
  ASSERT_TRUE(DecodeWith(false, data, plist.size(), &scalar, &scalar_end));
  ASSERT_TRUE(DecodeWith(true, data, plist.size(), &simd, &simd_end));
  EXPECT_EQ(scalar, plist);
  EXPECT_EQ(simd, plist);
  EXPECT_EQ(scalar_end, simd_end);
}

TEST(VarintSimdTest, RandomizedScalarSimdEquivalence) {
  if (!SimdVarintAvailable()) GTEST_SKIP() << "no SSSE3 on this host";
  std::mt19937 rng(20260808);
  for (int trial = 0; trial < 500; ++trial) {
    // Mix gap regimes so runs of single-byte deltas of every length are
    // generated, interleaved with multi-byte gaps that force the scalar
    // path mid-stream (and SIMD re-entry after it).
    const size_t count = rng() % 200;
    std::vector<int32_t> plist;
    int64_t p = -1;
    for (size_t i = 0; i < count; ++i) {
      int64_t gap;
      switch (rng() % 4) {
        case 0:
          gap = 1 + rng() % 8;  // tiny: SIMD fodder
          break;
        case 1:
          gap = 1 + rng() % 127;  // full single-byte range
          break;
        case 2:
          gap = 128 + rng() % 10000;  // 2-byte varint
          break;
        default:
          gap = 1 + rng() % 2000000;  // up to 3-byte varint
          break;
      }
      p += gap;
      if (p > INT32_MAX) break;
      plist.push_back(static_cast<int32_t>(p));
    }
    std::string data;
    EncodeDeltas(plist, &data);
    std::vector<int32_t> scalar, simd;
    size_t scalar_end = 0, simd_end = 0;
    const bool scalar_ok =
        DecodeWith(false, data, plist.size(), &scalar, &scalar_end);
    const bool simd_ok =
        DecodeWith(true, data, plist.size(), &simd, &simd_end);
    ASSERT_TRUE(scalar_ok) << "trial " << trial;
    ASSERT_TRUE(simd_ok) << "trial " << trial;
    ASSERT_EQ(scalar, plist) << "trial " << trial;
    ASSERT_EQ(simd, plist) << "trial " << trial;
    ASSERT_EQ(scalar_end, simd_end) << "trial " << trial;
  }
}

TEST(VarintSimdTest, RandomizedCorruptionVerdictsAgree) {
  if (!SimdVarintAvailable()) GTEST_SKIP() << "no SSSE3 on this host";
  std::mt19937 rng(987654321);
  int rejected = 0;
  for (int trial = 0; trial < 500; ++trial) {
    const size_t count = 16 + rng() % 64;
    std::vector<int32_t> plist;
    int32_t p = 0;
    for (size_t i = 0; i < count; ++i) {
      p += 1 + rng() % 50;
      plist.push_back(p);
    }
    std::string data;
    EncodeDeltas(plist, &data);
    // Flip one random byte (possibly creating a zero delta, a continuation
    // bit, or a huge gap) or truncate the tail.
    if (rng() % 2 == 0) {
      data[rng() % data.size()] =
          static_cast<char>(static_cast<uint8_t>(rng() % 256));
    } else {
      data.resize(rng() % data.size());
    }
    std::vector<int32_t> scalar, simd;
    size_t scalar_end = 0, simd_end = 0;
    const bool scalar_ok =
        DecodeWith(false, data, count, &scalar, &scalar_end);
    const bool simd_ok = DecodeWith(true, data, count, &simd, &simd_end);
    ASSERT_EQ(scalar_ok, simd_ok) << "trial " << trial;
    if (scalar_ok) {
      ASSERT_EQ(scalar, simd) << "trial " << trial;
      ASSERT_EQ(scalar_end, simd_end) << "trial " << trial;
    } else {
      ++rejected;
    }
  }
  // The corruption generator must actually exercise the reject paths.
  EXPECT_GT(rejected, 50);
}

TEST(VarintSimdTest, ZeroDeltaRejectedInsideSimdBlock) {
  if (!SimdVarintAvailable()) GTEST_SKIP() << "no SSSE3 on this host";
  // 32 single-byte deltas with a zero planted in the second 16-wide block.
  std::string data(32, '\x01');
  data[20] = '\x00';
  std::vector<int32_t> scalar, simd;
  size_t scalar_end = 0, simd_end = 0;
  EXPECT_FALSE(DecodeWith(false, data, 32, &scalar, &scalar_end));
  EXPECT_FALSE(DecodeWith(true, data, 32, &simd, &simd_end));
}

TEST(VarintSimdTest, NearInt32MaxFallsBackAndOverflowStillDetected) {
  if (!SimdVarintAvailable()) GTEST_SKIP() << "no SSSE3 on this host";
  // Start just below INT32_MAX, then 32 gaps of 127: overflows mid-run.
  std::string data;
  PutVarint(&data, static_cast<uint64_t>(INT32_MAX) - 1000);
  data.append(32, '\x7F');
  std::vector<int32_t> scalar, simd;
  size_t scalar_end = 0, simd_end = 0;
  EXPECT_FALSE(DecodeWith(false, data, 33, &scalar, &scalar_end));
  EXPECT_FALSE(DecodeWith(true, data, 33, &simd, &simd_end));

  // Same shape but stopping short of overflow: both accept, same output.
  std::vector<int32_t> plist;
  int64_t p = INT32_MAX - 16 * 127 - 5;
  plist.push_back(static_cast<int32_t>(p));
  for (int i = 0; i < 16; ++i) {
    p += 127;
    if (p > INT32_MAX) break;
    plist.push_back(static_cast<int32_t>(p));
  }
  data.clear();
  EncodeDeltas(plist, &data);
  ASSERT_TRUE(DecodeWith(false, data, plist.size(), &scalar, &scalar_end));
  ASSERT_TRUE(DecodeWith(true, data, plist.size(), &simd, &simd_end));
  EXPECT_EQ(scalar, plist);
  EXPECT_EQ(simd, plist);
}

TEST(VarintSimdTest, ToggleRestoresPreviousValue) {
  const bool was = SetSimdVarintEnabled(false);
  SetSimdVarintEnabled(was);
  EXPECT_EQ(SetSimdVarintEnabled(was), was);
}

}  // namespace
}  // namespace pimento::index
