// Differential tests: the operator plans (all four topkPrune strategies)
// must return exactly the answers of the plan-free reference evaluator on
// every workload.

#include <gtest/gtest.h>

#include "src/data/car_gen.h"
#include "src/data/inex_gen.h"
#include "src/data/xmark_gen.h"
#include "src/plan/planner.h"
#include "src/profile/flock.h"
#include "src/plan/reference_eval.h"
#include "src/profile/rule_parser.h"
#include "src/tpq/tpq_parser.h"

namespace pimento::plan {
namespace {

struct Workload {
  const char* name;
  const char* query;
  const char* profile;
};

// Workloads exercising pc/ad edges, value and keyword predicates, optional
// (SR-encoded) predicates, VORs, and KORs.
const Workload kCarWorkloads[] = {
    {"plain_scan", "//car", ""},
    {"value_filter", "//car[./price < 3000]", ""},
    {"keyword", "//car[ftcontains(., \"good condition\")]", ""},
    {"branch",
     "//car[./description[ftcontains(., \"good condition\")] and "
     "./price < 5000]",
     ""},
    {"optional_predicates",
     "//car[ftcontains(., \"low mileage\")? and ./mileage?]", ""},
    {"with_kors", "//car[./price < 6000]",
     "kor a: tag=car prefer ftcontains(\"NYC\")\n"
     "kor b: tag=car prefer ftcontains(\"best bid\") weight 3\n"},
    {"with_vors", "//car",
     "vor m priority 1: tag=car prefer lower mileage\n"
     "vor c priority 2: tag=car prefer color = \"red\"\n"},
    {"full_profile",
     "//car[./description[ftcontains(., \"good condition\")] and "
     "./price < 6000]",
     "sr p3 priority 1: if //car/description[ftcontains(., \"good "
     "condition\")] then add ftcontains(description, \"american\")\n"
     "vor c: tag=car prefer color = \"red\"\n"
     "kor nyc: tag=car prefer ftcontains(\"NYC\")\n"},
};

class ReferenceAgreementTest
    : public ::testing::TestWithParam<std::tuple<Workload, Strategy>> {};

TEST_P(ReferenceAgreementTest, PlansMatchReference) {
  const auto& [workload, strategy] = GetParam();
  index::Collection collection = index::Collection::Build(
      data::GenerateCarDealer({.num_cars = 60, .seed = 17}));
  score::Scorer scorer(&collection);

  auto query = tpq::ParseTpq(workload.query);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  auto profile = profile::ParseProfile(workload.profile);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();

  // The reference evaluates the same flock-encoded query the plans get.
  auto flock = profile::BuildFlock(*query, profile->scoping_rules);
  ASSERT_TRUE(flock.ok()) << flock.status().ToString();

  const int k = 8;
  std::vector<algebra::Answer> expected = ReferenceEvaluate(
      collection, scorer, flock->encoded, *profile, k);

  PlannerOptions options;
  options.k = k;
  options.strategy = strategy;
  auto plan = BuildPlan(collection, scorer, flock->encoded, profile->vors,
                        profile->kors, options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::vector<algebra::Answer> actual = plan->Execute();

  ASSERT_EQ(actual.size(), expected.size()) << workload.name;
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].node, expected[i].node)
        << workload.name << " rank " << i + 1;
    EXPECT_NEAR(actual[i].s, expected[i].s, 1e-9) << workload.name;
    EXPECT_NEAR(actual[i].k, expected[i].k, 1e-9) << workload.name;
  }
}

std::string CaseName(
    const ::testing::TestParamInfo<std::tuple<Workload, Strategy>>& info) {
  std::string out = std::get<0>(info.param).name;
  out += "_";
  out += StrategyName(std::get<1>(info.param));
  for (char& c : out) {
    if (c == '-') c = '_';
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    CarWorkloads, ReferenceAgreementTest,
    ::testing::Combine(::testing::ValuesIn(kCarWorkloads),
                       ::testing::Values(Strategy::kNaive,
                                         Strategy::kInterleave,
                                         Strategy::kInterleaveSorted,
                                         Strategy::kPush)),
    CaseName);

TEST(ReferenceAgreementXmarkTest, Fig5Workload) {
  index::Collection collection = index::Collection::Build(
      data::GenerateXmark({.target_bytes = 96u << 10, .seed = 3}));
  score::Scorer scorer(&collection);
  auto query =
      tpq::ParseTpq("//person[.//business[ftcontains(., \"Yes\")]]");
  ASSERT_TRUE(query.ok());
  auto profile = profile::ParseProfile(R"(
kor k1: tag=person prefer ftcontains("male") weight 8
kor k2: tag=person prefer ftcontains("Phoenix")
vor pi5: tag=person prefer age = "33"
)");
  ASSERT_TRUE(profile.ok());
  const int k = 12;
  std::vector<algebra::Answer> expected =
      ReferenceEvaluate(collection, scorer, *query, *profile, k);
  for (Strategy strategy :
       {Strategy::kNaive, Strategy::kInterleave, Strategy::kInterleaveSorted,
        Strategy::kPush}) {
    PlannerOptions options;
    options.k = k;
    options.strategy = strategy;
    auto plan = BuildPlan(collection, scorer, *query, profile->vors,
                          profile->kors, options);
    ASSERT_TRUE(plan.ok());
    std::vector<algebra::Answer> actual = plan->Execute();
    ASSERT_EQ(actual.size(), expected.size()) << StrategyName(strategy);
    for (size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i].node, expected[i].node)
          << StrategyName(strategy) << " rank " << i + 1;
    }
  }
}

TEST(ReferenceAgreementInexTest, AncestorConditionWorkload) {
  // //article[au]...//abs — predicates on the ancestor side of the
  // distinguished node (up-navigation).
  data::InexCollection inex = data::GenerateInex({});
  index::Collection collection =
      index::Collection::Build(std::move(inex.doc));
  score::Scorer scorer(&collection);
  const data::InexTopicSpec& topic = inex.topics[1];
  auto query = tpq::ParseTpq(data::TopicQuery(topic, "abs"));
  ASSERT_TRUE(query.ok());
  auto profile = profile::ParseProfile(data::TopicProfile(topic, "abs"));
  ASSERT_TRUE(profile.ok());
  auto flock = profile::BuildFlock(*query, profile->scoping_rules);
  ASSERT_TRUE(flock.ok());
  const int k = 5;
  std::vector<algebra::Answer> expected =
      ReferenceEvaluate(collection, scorer, flock->encoded, *profile, k);
  ASSERT_FALSE(expected.empty());
  PlannerOptions options;
  options.k = k;
  options.strategy = Strategy::kPush;
  auto plan = BuildPlan(collection, scorer, flock->encoded, profile->vors,
                        profile->kors, options);
  ASSERT_TRUE(plan.ok());
  std::vector<algebra::Answer> actual = plan->Execute();
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].node, expected[i].node) << "rank " << i + 1;
  }
}

}  // namespace
}  // namespace pimento::plan
