#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/data/car_gen.h"
#include "src/data/inex_gen.h"
#include "src/data/xmark_gen.h"

namespace pimento::core {
namespace {

constexpr const char* kCarQuery =
    "//car[./description[ftcontains(., \"good condition\") and "
    "ftcontains(., \"low mileage\")] and ./price < 2000]";

constexpr const char* kFig2Profile = R"(
profile figure2
rank K,V,S
sr p1 priority 3: if //car/description[ftcontains(., "low mileage")] then delete ftcontains(car, "good condition")
sr p2 priority 1: if //car/description[ftcontains(., "good condition")] then add ftcontains(description, "american")
sr p3 priority 2: if //car/description[ftcontains(., "good condition")] then delete ftcontains(description, "low mileage")
vor pi1: tag=car prefer color = "red"
kor pi4: tag=car prefer ftcontains("best bid")
kor pi5: tag=car prefer ftcontains("NYC")
)";

SearchEngine CarEngine(int cars = 40) {
  data::CarGenOptions gen;
  gen.num_cars = cars;
  return SearchEngine(
      index::Collection::Build(data::GenerateCarDealer(gen)));
}

TEST(EngineTest, PlainSearchReturnsRankedAnswers) {
  SearchEngine engine = CarEngine();
  auto result = engine.Search("//car[./price < 2000]", SearchOptions{.k = 5});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_LE(result->answers.size(), 5u);
  ASSERT_FALSE(result->answers.empty());
  for (size_t i = 0; i < result->answers.size(); ++i) {
    EXPECT_EQ(result->answers[i].rank, static_cast<int>(i) + 1);
    EXPECT_EQ(engine.collection().doc().node(result->answers[i].node).tag,
              "car");
  }
}

TEST(EngineTest, QueryParseErrorSurfaces) {
  SearchEngine engine = CarEngine();
  auto result = engine.Search("car[", SearchOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(EngineTest, ProfileParseErrorSurfaces) {
  SearchEngine engine = CarEngine();
  auto result = engine.Search("//car", "nonsense line", SearchOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(EngineTest, FromXmlParsesAndIndexes) {
  auto engine = SearchEngine::FromXml(
      "<shop><car><price>10</price></car></shop>");
  ASSERT_TRUE(engine.ok());
  auto result = engine->Search("//car", SearchOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->answers.size(), 1u);
}

TEST(EngineTest, FromXmlRejectsBadXml) {
  EXPECT_FALSE(SearchEngine::FromXml("<broken").ok());
}

TEST(EngineTest, CorpusSearchSpansDocuments) {
  auto engine = SearchEngine::FromXmlCorpus(
      {"<shop><car><price>100</price></car></shop>",
       "<shop><car><price>200</price></car></shop>"});
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto result = engine->Search("//car", SearchOptions{.k = 10});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->answers.size(), 2u);
}

TEST(EngineTest, CorpusReportsFailingDocumentIndex) {
  auto engine = SearchEngine::FromXmlCorpus({"<ok/>", "<broken"});
  ASSERT_FALSE(engine.ok());
  EXPECT_NE(engine.status().message().find("document 1"), std::string::npos);
}

TEST(EngineTest, PersonalizationPromotesPreferredCar) {
  // The Fig. 1 best-bid NYC car lacks "low mileage" and scores low on the
  // plain query, but the Fig. 2 profile (drop low-mileage + KORs) must rank
  // it first.
  SearchEngine engine = CarEngine();
  auto plain = engine.Search(kCarQuery, SearchOptions{.k = 5});
  ASSERT_TRUE(plain.ok());
  auto personalized =
      engine.Search(kCarQuery, kFig2Profile, SearchOptions{.k = 5});
  ASSERT_TRUE(personalized.ok()) << personalized.status().ToString();
  ASSERT_FALSE(personalized->answers.empty());
  // Node 1 is the hand-crafted Fig. 1 "best bid ... NYC" car (node 0 is the
  // dealer root).
  EXPECT_EQ(personalized->answers[0].node, 1);
  EXPECT_GT(personalized->answers[0].k, 0.0);
  // The plain query cannot return it (no "low mileage" in its description).
  for (const RankedAnswer& a : plain->answers) {
    EXPECT_NE(a.node, 1);
  }
}

TEST(EngineTest, StaticAnalysisArtifactsPopulated) {
  SearchEngine engine = CarEngine();
  auto result = engine.Search(kCarQuery, kFig2Profile, SearchOptions{.k = 5});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->flock.members.size(), 3u);
  EXPECT_FALSE(result->flock.conflict_report.conflicts.empty());
  EXPECT_FALSE(result->encoded_query.empty());
  EXPECT_NE(result->plan_description.find("topkPrune"), std::string::npos);
  EXPECT_GT(result->stats.scanned, 0);
}

TEST(EngineTest, UnresolvedAmbiguityFails) {
  SearchEngine engine = CarEngine();
  const char* profile = R"(
vor pi1: tag=car prefer color = "red"
vor pi2: tag=car prefer lower mileage
)";
  auto result = engine.Search("//car", profile, SearchOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAmbiguous);
}

TEST(EngineTest, PrioritiesResolveAmbiguity) {
  SearchEngine engine = CarEngine();
  const char* profile = R"(
vor pi1 priority 2: tag=car prefer color = "red"
vor pi2 priority 1: tag=car prefer lower mileage
)";
  auto result = engine.Search("//car", profile, SearchOptions{.k = 5});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->ambiguity.ambiguous);
  EXPECT_TRUE(result->ambiguity.resolved_by_priorities);
  // Ranking follows mileage first (priority 1): keys are in priority order.
  const auto& answers = result->answers;
  for (size_t i = 1; i < answers.size(); ++i) {
    EXPECT_LE(answers[i - 1].vor_keys[0], answers[i].vor_keys[0]);
  }
}

TEST(EngineTest, AmbiguityCheckCanBeDisabled) {
  SearchEngine engine = CarEngine();
  const char* profile = R"(
vor pi1: tag=car prefer color = "red"
vor pi2: tag=car prefer lower mileage
)";
  SearchOptions options;
  options.check_ambiguity = false;
  auto result = engine.Search("//car", profile, options);
  EXPECT_TRUE(result.ok());
}

TEST(EngineTest, ConflictingSrsWithoutPrioritiesFail) {
  SearchEngine engine = CarEngine();
  const char* profile = R"(
sr p1: if //car/description[ftcontains(., "low mileage")] then delete ftcontains(car, "good condition")
sr p3: if //car/description[ftcontains(., "good condition")] then delete ftcontains(description, "low mileage")
)";
  auto result = engine.Search(kCarQuery, profile, SearchOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kConflict);
}

TEST(EngineTest, VorOnlyProfileRanksByValue) {
  SearchEngine engine = CarEngine();
  const char* profile = "vor red: tag=car prefer color = \"red\"";
  auto result = engine.Search("//car", profile, SearchOptions{.k = 10});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // All red cars must precede all non-red ones.
  bool seen_non_red = false;
  for (const RankedAnswer& a : result->answers) {
    bool is_red =
        engine.collection().AttrString(a.node, "color").value_or("") == "red";
    if (!is_red) seen_non_red = true;
    EXPECT_FALSE(is_red && seen_non_red)
        << "red car ranked after a non-red car";
  }
}

TEST(EngineTest, AnswerXmlSerializesSubtree) {
  SearchEngine engine = CarEngine();
  auto result = engine.Search("//car", SearchOptions{.k = 1});
  ASSERT_TRUE(result.ok());
  std::string xml = engine.AnswerXml(result->answers[0].node);
  EXPECT_NE(xml.find("<car>"), std::string::npos);
}

// ---------- the §7.2 guarantee: all four plans return the same top-k ----

struct StrategyCase {
  plan::Strategy strategy;
  const char* name;
};

class StrategyEquivalenceTest
    : public ::testing::TestWithParam<StrategyCase> {};

TEST_P(StrategyEquivalenceTest, MatchesNaiveOnCarWorkload) {
  SearchEngine engine = CarEngine(120);
  SearchOptions naive;
  naive.k = 8;
  naive.strategy = plan::Strategy::kNaive;
  auto baseline = engine.Search(kCarQuery, kFig2Profile, naive);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  SearchOptions opt;
  opt.k = 8;
  opt.strategy = GetParam().strategy;
  auto result = engine.Search(kCarQuery, kFig2Profile, opt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ASSERT_EQ(result->answers.size(), baseline->answers.size());
  for (size_t i = 0; i < result->answers.size(); ++i) {
    EXPECT_EQ(result->answers[i].node, baseline->answers[i].node)
        << GetParam().name << " diverges at rank " << i + 1;
  }
}

TEST_P(StrategyEquivalenceTest, MatchesNaiveOnXmarkWorkload) {
  data::XmarkOptions gen;
  gen.target_bytes = 150 << 10;
  SearchEngine engine(index::Collection::Build(data::GenerateXmark(gen)));
  const char* query =
      "//person[.//business[ftcontains(., \"Yes\")]]";
  const char* profile = R"(
kor k1: tag=person prefer ftcontains("male")
kor k2: tag=person prefer ftcontains("United States")
kor k3: tag=person prefer ftcontains("College")
kor k4: tag=person prefer ftcontains("Phoenix")
)";
  SearchOptions naive;
  naive.k = 10;
  naive.strategy = plan::Strategy::kNaive;
  auto baseline = engine.Search(query, profile, naive);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_EQ(baseline->answers.size(), 10u);

  SearchOptions opt;
  opt.k = 10;
  opt.strategy = GetParam().strategy;
  auto result = engine.Search(query, profile, opt);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->answers.size(), baseline->answers.size());
  for (size_t i = 0; i < result->answers.size(); ++i) {
    EXPECT_EQ(result->answers[i].node, baseline->answers[i].node)
        << GetParam().name << " diverges at rank " << i + 1;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, StrategyEquivalenceTest,
    ::testing::Values(
        StrategyCase{plan::Strategy::kInterleave, "NS-ILtpkP"},
        StrategyCase{plan::Strategy::kInterleaveSorted, "S-ILtpkP"},
        StrategyCase{plan::Strategy::kPush, "PtpkP"}),
    [](const ::testing::TestParamInfo<StrategyCase>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(EngineTest, PushPrunesMoreThanNaive) {
  data::XmarkOptions gen;
  gen.target_bytes = 200 << 10;
  SearchEngine engine(index::Collection::Build(data::GenerateXmark(gen)));
  const char* query = "//person[.//business[ftcontains(., \"Yes\")]]";
  const char* profile = R"(
kor k1: tag=person prefer ftcontains("male")
kor k2: tag=person prefer ftcontains("Phoenix")
)";
  SearchOptions push;
  push.k = 10;
  push.strategy = plan::Strategy::kPush;
  auto result = engine.Search(query, profile, push);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.pruned_by_topk, 0)
      << "push plans should prune intermediate answers on this workload";
}

// ---------- INEX-style personalization recovers narrative components ----

TEST(EngineTest, InexProfileRecoversNarrativeOnlyComponents) {
  data::InexCollection inex = data::GenerateInex({});
  SearchEngine engine(index::Collection::Build(std::move(inex.doc)));
  const data::InexTopicSpec& topic = inex.topics[1];  // topic 131
  ASSERT_EQ(topic.id, 131);
  const std::string tag = "abs";
  std::string query = data::TopicQuery(topic, tag);
  std::string profile = data::TopicProfile(topic, tag);

  auto plain = engine.Search(query, SearchOptions{.k = 5});
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  auto personalized = engine.Search(query, profile, SearchOptions{.k = 5});
  ASSERT_TRUE(personalized.ok()) << personalized.status().ToString();

  // Narrative-only relevant components contain no main keyword: the plain
  // query can never return them; the personalized one must find at least
  // one (they dominate on K).
  auto contains_narrative_only = [&](const SearchResult& r) {
    for (const RankedAnswer& a : r.answers) {
      index::Phrase main =
          engine.collection().MakePhrase(topic.main_keyword);
      if (engine.collection().CountOccurrences(a.node, main) == 0) {
        return true;
      }
    }
    return false;
  };
  EXPECT_FALSE(contains_narrative_only(*plain));
  EXPECT_TRUE(contains_narrative_only(*personalized));
}

}  // namespace
}  // namespace pimento::core
