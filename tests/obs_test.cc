// The observability layer: metrics registry primitives (sharded counters,
// gauges, log-scale histograms, Prometheus/JSON rendering), per-query span
// trees behind the unified SearchRequest entry point, the zero-overhead
// guarantee when tracing is off, 1-in-N sampling, and the
// SearchRequest-vs-legacy-overload identity.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/fault_injector.h"
#include "src/core/engine.h"
#include "src/data/car_gen.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tpq/tpq_parser.h"

namespace pimento {
namespace {

using core::SearchEngine;
using core::SearchMode;
using core::SearchOptions;
using core::SearchRequest;
using core::SearchResult;
using obs::Histogram;
using obs::MetricsRegistry;

constexpr const char* kCarQuery =
    "//car[./description[ftcontains(., \"good condition\")] and "
    "./price < 5000]";

constexpr const char* kProfile = R"(
profile obs
rank K,V,S
sr p1 priority 1: if //car/description[ftcontains(., "good condition")] then add ftcontains(description, "american")
vor pi1: tag=car prefer color = "red"
kor pi2: tag=car prefer ftcontains("best bid")
kor pi3: tag=car prefer ftcontains("NYC")
)";

SearchEngine CarEngine(int cars = 80) {
  data::CarGenOptions gen;
  gen.num_cars = cars;
  return SearchEngine(index::Collection::Build(data::GenerateCarDealer(gen)));
}

/// Byte-exact rendering of one outcome (%a doubles), for identity checks.
std::string Canonical(const StatusOr<SearchResult>& result) {
  if (!result.ok()) return result.status().ToString();
  std::string out = result->encoded_query + "\n" +
                    result->plan_description + "\n";
  char buf[64];
  for (const core::RankedAnswer& a : result->answers) {
    std::snprintf(buf, sizeof(buf), "#%d n%d s=%a k=%a\n", a.rank, a.node,
                  a.s, a.k);
    out += buf;
  }
  return out;
}

struct FaultGuard {
  ~FaultGuard() { FaultInjector::Instance().DisarmAll(); }
};

// --- histogram bucket boundaries ---

TEST(HistogramTest, BucketZeroHoldsNonPositiveAndUnderflow) {
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(-3.5), 0u);
  EXPECT_EQ(Histogram::BucketIndex(std::nan("")), 0u);
  // Below the smallest finite boundary 2^-10.
  EXPECT_EQ(Histogram::BucketIndex(std::ldexp(1.0, Histogram::kMinExp - 1)),
            0u);
  EXPECT_EQ(Histogram::BucketIndex(1e-300), 0u);
}

TEST(HistogramTest, BucketsAreHalfOpenPowersOfTwo) {
  // A value exactly on a boundary belongs to the bucket whose *lower*
  // bound it is: 2^kMinExp is the first value of bucket 1, not bucket 0.
  EXPECT_EQ(Histogram::BucketIndex(std::ldexp(1.0, Histogram::kMinExp)), 1u);
  // 1.0 = 2^0: bucket i covers [2^(kMinExp+i-1), 2^(kMinExp+i)), so 1.0
  // lands at i = -kMinExp + 1.
  const uint32_t one_bucket = static_cast<uint32_t>(-Histogram::kMinExp) + 1;
  EXPECT_EQ(Histogram::BucketIndex(1.0), one_bucket);
  EXPECT_EQ(Histogram::BucketIndex(1.999), one_bucket);
  EXPECT_EQ(Histogram::BucketIndex(2.0), one_bucket + 1);
  EXPECT_EQ(Histogram::BucketIndex(0.75), one_bucket - 1);
  // Consistency: every finite upper bound is the first value of the next
  // bucket.
  for (uint32_t i = 0; i + 2 < Histogram::kBucketCount; ++i) {
    const double ub = Histogram::BucketUpperBound(i);
    EXPECT_EQ(Histogram::BucketIndex(ub), i + 1) << "boundary " << ub;
  }
}

TEST(HistogramTest, OverflowClampsToLastBucket) {
  const double huge = std::ldexp(
      1.0, Histogram::kMinExp + static_cast<int>(Histogram::kBucketCount));
  EXPECT_EQ(Histogram::BucketIndex(huge), Histogram::kBucketCount - 1);
  EXPECT_EQ(Histogram::BucketIndex(1e300), Histogram::kBucketCount - 1);
  EXPECT_TRUE(std::isinf(
      Histogram::BucketUpperBound(Histogram::kBucketCount - 1)));
}

TEST(HistogramTest, ObserveAccumulatesCountSumAndBuckets) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("t_hist", "test");
  h->Observe(0.5);
  h->Observe(0.5);
  h->Observe(3.0);
  EXPECT_EQ(h->Count(), 3);
  EXPECT_NEAR(h->Sum(), 4.0, 1e-5);
  EXPECT_EQ(h->BucketCount(Histogram::BucketIndex(0.5)), 2);
  EXPECT_EQ(h->BucketCount(Histogram::BucketIndex(3.0)), 1);
}

// --- counters, gauges, registry ---

TEST(MetricsTest, CounterIncrementsAndSumsAcrossShards) {
  MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("t_counter", "test");
  EXPECT_EQ(c->Value(), 0);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42);
}

TEST(MetricsTest, ConcurrentCounterIncrementsAreExact) {
  MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("t_conc", "test");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->Value(), int64_t{kThreads} * kPerThread);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  obs::Gauge* g = registry.GetGauge("t_gauge", "test");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->Value(), 7);
}

TEST(MetricsTest, RegistrationIsIdempotent) {
  MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("t_same", "first help wins");
  obs::Counter* b = registry.GetCounter("t_same", "ignored");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->help(), "first help wins");
}

TEST(MetricsTest, RenderTextIsPrometheusShaped) {
  MetricsRegistry registry;
  registry.GetCounter("t_requests_total", "requests")->Increment(3);
  Histogram* h = registry.GetHistogram("t_lat_ms", "latency");
  h->Observe(0.5);
  h->Observe(100.0);
  registry.GetGauge("t_resident", "bytes")->Set(64);
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("# TYPE t_requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("t_requests_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_lat_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("t_lat_ms_count 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_resident gauge"), std::string::npos);
  EXPECT_NE(text.find("t_resident 64"), std::string::npos);
}

TEST(MetricsTest, RenderJsonCarriesAllThreeKinds) {
  MetricsRegistry registry;
  registry.GetCounter("t_c", "")->Increment();
  registry.GetGauge("t_g", "")->Set(5);
  registry.GetHistogram("t_h", "")->Observe(1.0);
  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"t_c\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

// --- tracing through the unified entry point ---

TEST(TraceTest, TracedSearchYieldsSpanTreeAndIdenticalAnswers) {
  SearchEngine engine = CarEngine();
  SearchRequest plain = SearchRequest::Text(kCarQuery, kProfile);
  StatusOr<SearchResult> untraced = engine.Execute(plain);
  ASSERT_TRUE(untraced.ok());
  EXPECT_FALSE(untraced->trace.enabled);
  EXPECT_TRUE(untraced->trace.spans.empty());

  SearchRequest traced_req = plain;
  traced_req.trace.enabled = true;
  StatusOr<SearchResult> traced = engine.Execute(traced_req);
  ASSERT_TRUE(traced.ok());
  ASSERT_TRUE(traced->trace.enabled);

  // Tracing must not perturb the search: answers, encoded query and plan
  // description are byte-identical.
  EXPECT_EQ(Canonical(untraced), Canonical(traced));

  // The tree covers the planner phases and every operator of the plan.
  std::set<std::string> phases;
  int operator_spans = 0;
  for (const obs::TraceSpan& s : traced->trace.spans) {
    if (s.category == "operator") {
      ++operator_spans;
    } else {
      phases.insert(s.name);
    }
  }
  EXPECT_TRUE(phases.count("parse.query")) << traced->trace.ToString();
  EXPECT_TRUE(phases.count("planner.flock"));
  EXPECT_TRUE(phases.count("flock.conflict_analysis"));
  EXPECT_TRUE(phases.count("planner.plan_build"));
  EXPECT_TRUE(phases.count("execute"));
  EXPECT_TRUE(phases.count("rank.materialize"));
  // One operator span per plan operator: the description lists the chain.
  int plan_ops = 1;
  for (size_t pos = 0;
       (pos = traced->plan_description.find(" -> ", pos)) != std::string::npos;
       pos += 4) {
    ++plan_ops;
  }
  EXPECT_EQ(operator_spans, plan_ops) << traced->plan_description << "\n"
                                      << traced->trace.ToString();

  // The root span's duration is the measured query time; the per-span self
  // times must account for (nearly) all of it.
  EXPECT_GT(traced->trace.total_ns, 0);
  const double coverage = traced->trace.CoverageFraction();
  EXPECT_GT(coverage, 0.5) << traced->trace.ToString();
  EXPECT_LT(coverage, 1.1) << traced->trace.ToString();

  // Operator spans carry the tuple flow; the leaf scan produced something.
  int64_t max_out = 0;
  for (const obs::TraceSpan& s : traced->trace.spans) {
    if (s.category == "operator") max_out = std::max(max_out, s.tuples_out);
  }
  EXPECT_GT(max_out, 0);

  // Exports render.
  EXPECT_NE(traced->trace.ToString().find("coverage="), std::string::npos);
  EXPECT_NE(traced->trace.ToChromeJson().find("\"traceEvents\""),
            std::string::npos);
}

TEST(TraceTest, SamplingOffPerformsNoSpanAllocation) {
  FaultGuard guard;
  SearchEngine engine = CarEngine(30);
  // Arm an unrelated site so the injector counts traversals process-wide;
  // the "obs.trace.span" site itself stays unarmed (pass-through).
  FaultInjector::FaultSpec spec;
  spec.skip = 1 << 30;  // never actually fires
  FaultInjector::Instance().Arm("obs_test.dummy", spec);

  const int64_t before =
      FaultInjector::Instance().HitCount("obs.trace.span");
  StatusOr<SearchResult> off = engine.Execute(SearchRequest::Text(kCarQuery));
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(FaultInjector::Instance().HitCount("obs.trace.span"), before)
      << "untraced request allocated trace spans";

  SearchRequest traced_req = SearchRequest::Text(kCarQuery);
  traced_req.trace.enabled = true;
  StatusOr<SearchResult> on = engine.Execute(traced_req);
  ASSERT_TRUE(on.ok());
  EXPECT_GT(FaultInjector::Instance().HitCount("obs.trace.span"), before)
      << "traced request recorded no spans";
}

TEST(TraceTest, SampleOneInNTracesEveryNthRequest) {
  SearchEngine engine = CarEngine(30);
  SearchRequest request = SearchRequest::Text("//car");
  request.trace.sample_one_in = 2;
  std::vector<bool> traced;
  for (int i = 0; i < 6; ++i) {
    StatusOr<SearchResult> result = engine.Execute(request);
    ASSERT_TRUE(result.ok());
    traced.push_back(result->trace.enabled);
  }
  // The engine-wide ticker starts at zero for a fresh engine: requests
  // 2, 4, 6 are traced.
  EXPECT_EQ(traced,
            (std::vector<bool>{false, true, false, true, false, true}));
}

TEST(TraceTest, RelaxedAndWinnowModesTraceToo) {
  SearchEngine engine = CarEngine(40);
  StatusOr<tpq::Tpq> query = tpq::ParseTpq("//car[./price < 100]");
  ASSERT_TRUE(query.ok());
  for (SearchMode mode : {SearchMode::kRelaxed, SearchMode::kWinnow}) {
    SearchRequest request;
    request.query = &*query;
    request.mode = mode;
    request.trace.enabled = true;
    StatusOr<SearchResult> result = engine.Execute(request);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->trace.enabled);
    EXPECT_GT(result->trace.spans.size(), 1u);
  }
}

// --- the unified SearchRequest entry point ---

TEST(SearchRequestTest, LegacyOverloadsMatchExecute) {
  SearchEngine engine = CarEngine();
  SearchOptions options;
  options.k = 5;

  // Text pair.
  StatusOr<SearchResult> via_shim = engine.Search(kCarQuery, kProfile, options);
  StatusOr<SearchResult> via_request =
      engine.Execute(SearchRequest::Text(kCarQuery, kProfile, options));
  EXPECT_EQ(Canonical(via_shim), Canonical(via_request));

  // Parsed pair, plus the relaxed and winnow modes.
  StatusOr<tpq::Tpq> query = tpq::ParseTpq(kCarQuery);
  ASSERT_TRUE(query.ok());
  StatusOr<SearchResult> text_profile = engine.Search(kCarQuery, kProfile);
  ASSERT_TRUE(text_profile.ok());

  StatusOr<SearchResult> relaxed_shim =
      engine.Search(kCarQuery, kProfile, options);
  SearchRequest relaxed_req = SearchRequest::Text(kCarQuery, kProfile, options);
  relaxed_req.mode = SearchMode::kTopK;
  EXPECT_EQ(Canonical(relaxed_shim), Canonical(engine.Execute(relaxed_req)));

  // No-profile single-string overload.
  StatusOr<SearchResult> bare_shim = engine.Search("//car", options);
  StatusOr<SearchResult> bare_req =
      engine.Execute(SearchRequest::Text("//car", "", options));
  EXPECT_EQ(Canonical(bare_shim), Canonical(bare_req));
}

TEST(SearchRequestTest, RequestLimitsAreCanonicalOverOptionsLimits) {
  SearchEngine engine = CarEngine(40);

  // Limits on the request fire.
  SearchRequest request = SearchRequest::Text("//car");
  request.limits.max_answers = 3;
  StatusOr<SearchResult> strict = engine.Execute(request);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kResourceExhausted);

  // Legacy home still honored when the request's limits are unset.
  SearchRequest legacy = SearchRequest::Text("//car");
  legacy.options.limits.max_answers = 3;
  StatusOr<SearchResult> legacy_result = engine.Execute(legacy);
  ASSERT_FALSE(legacy_result.ok());
  EXPECT_EQ(legacy_result.status().code(), StatusCode::kResourceExhausted);

  // The canonical home wins when both are set: a permissive request-level
  // budget overrides a restrictive options-level one.
  SearchRequest both = SearchRequest::Text("//car");
  both.limits.max_answers = 1 << 20;
  both.options.limits.max_answers = 1;
  StatusOr<SearchResult> permissive = engine.Execute(both);
  EXPECT_TRUE(permissive.ok()) << permissive.status().ToString();

  // EffectiveLimits itself.
  EXPECT_EQ(&core::EffectiveLimits(both), &both.limits);
  EXPECT_EQ(&core::EffectiveLimits(legacy), &legacy.options.limits);
}

TEST(SearchRequestTest, EngineMetricsCountRequestsAndGovernorStops) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  obs::Counter* requests =
      registry.GetCounter("pimento_requests_total");
  obs::Counter* stops =
      registry.GetCounter("pimento_governor_stops_resource_total");
  obs::Counter* errors = registry.GetCounter("pimento_request_errors_total");
  obs::Histogram* latency =
      registry.GetHistogram("pimento_request_latency_ms");
  const int64_t requests_before = requests->Value();
  const int64_t stops_before = stops->Value();
  const int64_t errors_before = errors->Value();
  const int64_t observations_before = latency->Count();

  SearchEngine engine = CarEngine(40);
  ASSERT_TRUE(engine.Execute(SearchRequest::Text("//car")).ok());
  SearchRequest limited = SearchRequest::Text("//car");
  limited.limits.max_answers = 1;
  ASSERT_FALSE(engine.Execute(limited).ok());

  EXPECT_EQ(requests->Value(), requests_before + 2);
  EXPECT_GE(stops->Value(), stops_before + 1);
  EXPECT_EQ(errors->Value(), errors_before + 1);
  EXPECT_EQ(latency->Count(), observations_before + 2);
}

TEST(SearchRequestTest, ExplainCarriesTraceReport) {
  SearchEngine engine = CarEngine(30);
  StatusOr<SearchResult> result = engine.Execute(SearchRequest::Text("//car"));
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->answers.empty());

  SearchRequest request = SearchRequest::Text("//car");
  request.trace.enabled = true;
  StatusOr<core::Explanation> explained =
      engine.Explain(request, result->answers[0].node);
  ASSERT_TRUE(explained.ok());
  EXPECT_FALSE(explained->trace_report.empty());
  EXPECT_NE(explained->trace_report.find("coverage="), std::string::npos);
  EXPECT_NE(explained->ToString().find("trace:"), std::string::npos);
}

}  // namespace
}  // namespace pimento
