#include <gtest/gtest.h>

#include "src/profile/rule_parser.h"
#include "src/profile/scoping_rule.h"
#include "src/tpq/tpq_parser.h"

namespace pimento::profile {
namespace {

tpq::Tpq Q(const char* text) {
  auto q = tpq::ParseTpq(text);
  EXPECT_TRUE(q.ok()) << text << ": " << q.status().ToString();
  return *q;
}

ScopingRule SR(const char* text) {
  auto r = ParseScopingRule(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return *r;
}

constexpr const char* kCarQuery =
    "//car[./description[ftcontains(., \"good condition\") and "
    "ftcontains(., \"low mileage\")] and ./price < 2000]";

TEST(SrParserTest, DeleteRule) {
  ScopingRule r = SR(
      "sr p1 priority 2: if //car/description[ftcontains(., \"low "
      "mileage\")] then delete ftcontains(car, \"good condition\")");
  EXPECT_EQ(r.name, "p1");
  EXPECT_EQ(r.priority, 2);
  EXPECT_EQ(r.action, SrAction::kDelete);
  ASSERT_EQ(r.conclusion.size(), 1u);
  EXPECT_EQ(r.conclusion[0].kind, SrAtom::Kind::kKeyword);
  EXPECT_EQ(r.conclusion[0].node_tag, "car");
  EXPECT_EQ(r.conclusion[0].keyword, "good condition");
  EXPECT_EQ(r.condition.size(), 2);
}

TEST(SrParserTest, AddRule) {
  ScopingRule r = SR(
      "sr p2: if //car/description[ftcontains(., \"good condition\")] then "
      "add ftcontains(description, \"american\")");
  EXPECT_EQ(r.action, SrAction::kAdd);
  EXPECT_EQ(r.priority, 0);
}

TEST(SrParserTest, ReplaceRuleWithEdges) {
  ScopingRule r = SR(
      "sr relax: if //car then replace pc(car, description) with "
      "ad(car, description)");
  EXPECT_EQ(r.action, SrAction::kReplace);
  ASSERT_EQ(r.replaced.size(), 1u);
  ASSERT_EQ(r.conclusion.size(), 1u);
  EXPECT_EQ(r.replaced[0].edge, tpq::EdgeKind::kChild);
  EXPECT_EQ(r.conclusion[0].edge, tpq::EdgeKind::kDescendant);
}

TEST(SrParserTest, ValueAtomAndTrueCondition) {
  ScopingRule r =
      SR("sr cap: if true then add value(price) <= 3000");
  EXPECT_TRUE(r.condition.empty());
  ASSERT_EQ(r.conclusion.size(), 1u);
  EXPECT_EQ(r.conclusion[0].kind, SrAtom::Kind::kValue);
  EXPECT_EQ(r.conclusion[0].op, tpq::RelOp::kLe);
  EXPECT_DOUBLE_EQ(r.conclusion[0].number, 3000);
}

TEST(SrParserTest, StringValueAtom) {
  ScopingRule r = SR("sr c: if true then add value(color) = \"Red\"");
  EXPECT_FALSE(r.conclusion[0].numeric);
  EXPECT_EQ(r.conclusion[0].text, "red");
}

TEST(SrParserTest, MultiAtomConclusion) {
  ScopingRule r = SR(
      "sr multi: if //car then add ftcontains(car, \"clean\") and "
      "value(price) < 5000 and pc(car, warranty)");
  EXPECT_EQ(r.conclusion.size(), 3u);
}

TEST(SrParserTest, Errors) {
  EXPECT_FALSE(ParseScopingRule("sr x: bad").ok());
  EXPECT_FALSE(ParseScopingRule("sr x: if //car add y").ok());  // no 'then'
  EXPECT_FALSE(ParseScopingRule("vor x: tag=a prefer b = \"c\"").ok());
  EXPECT_FALSE(
      ParseScopingRule("sr x: if //car then explode ftcontains(a, \"b\")")
          .ok());
}

TEST(SrApplyTest, DeleteRemovesKeywordAnywhereUnderAnchor) {
  ScopingRule r = SR(
      "sr p1: if //car/description[ftcontains(., \"low mileage\")] then "
      "delete ftcontains(car, \"good condition\")");
  tpq::Tpq q = Q(kCarQuery);
  ASSERT_TRUE(IsApplicable(r, q));
  tpq::Tpq rewritten = ApplyRule(r, q);
  int desc = rewritten.FindByTag("description");
  ASSERT_GE(desc, 0);
  ASSERT_EQ(rewritten.node(desc).keyword_predicates.size(), 1u);
  EXPECT_EQ(rewritten.node(desc).keyword_predicates[0].keyword,
            "low mileage");
}

TEST(SrApplyTest, AddAttachesKeywordToConditionMatch) {
  ScopingRule r = SR(
      "sr p2: if //car/description[ftcontains(., \"good condition\")] then "
      "add ftcontains(description, \"american\")");
  tpq::Tpq rewritten = ApplyRule(r, Q(kCarQuery));
  int desc = rewritten.FindByTag("description");
  EXPECT_EQ(rewritten.node(desc).keyword_predicates.size(), 3u);
  // Added literally (not optional) for flock-member semantics.
  EXPECT_FALSE(rewritten.node(desc).keyword_predicates.back().optional);
}

TEST(SrApplyTest, InapplicableRuleIsIdentity) {
  ScopingRule r = SR(
      "sr p: if //truck then add ftcontains(truck, \"diesel\")");
  tpq::Tpq q = Q(kCarQuery);
  EXPECT_FALSE(IsApplicable(r, q));
  EXPECT_EQ(ApplyRule(r, q).ToString(), q.ToString());
}

TEST(SrApplyTest, AddIsIdempotent) {
  ScopingRule r = SR(
      "sr p2: if //car then add ftcontains(car, \"american\")");
  tpq::Tpq once = ApplyRule(r, Q("//car"));
  tpq::Tpq twice = ApplyRule(r, once);
  EXPECT_EQ(once.ToString(), twice.ToString());
}

TEST(SrApplyTest, AddEdgeCreatesBranch) {
  ScopingRule r = SR("sr p: if //car then add pc(car, warranty)");
  tpq::Tpq rewritten = ApplyRule(r, Q("//car"));
  EXPECT_EQ(rewritten.size(), 2);
  int w = rewritten.FindByTag("warranty");
  ASSERT_GE(w, 0);
  EXPECT_EQ(rewritten.node(w).parent_edge, tpq::EdgeKind::kChild);
}

TEST(SrApplyTest, DeleteEdgeRemovesSubtree) {
  ScopingRule r = SR("sr p: if //car then delete pc(car, description)");
  tpq::Tpq rewritten = ApplyRule(r, Q(kCarQuery));
  EXPECT_EQ(rewritten.FindByTag("description"), -1);
  EXPECT_GE(rewritten.FindByTag("price"), 0);
}

TEST(SrApplyTest, DeleteEdgeNeverRemovesDistinguished) {
  ScopingRule r = SR("sr p: if //article then delete ad(article, abs)");
  tpq::Tpq q = Q("//article//abs");
  tpq::Tpq rewritten = ApplyRule(r, q);
  EXPECT_EQ(rewritten.node(rewritten.distinguished()).tag, "abs");
  EXPECT_EQ(rewritten.size(), 2);
}

TEST(SrApplyTest, ReplaceRelaxesPcToAd) {
  ScopingRule r = SR(
      "sr relax: if //car then replace pc(car, description) with "
      "ad(car, description)");
  tpq::Tpq rewritten = ApplyRule(r, Q(kCarQuery));
  int desc = rewritten.FindByTag("description");
  ASSERT_GE(desc, 0);
  EXPECT_EQ(rewritten.node(desc).parent_edge, tpq::EdgeKind::kDescendant);
  // Predicates on the relaxed branch survive.
  EXPECT_EQ(rewritten.node(desc).keyword_predicates.size(), 2u);
}

TEST(SrApplyTest, ReplaceKeywordSwapsPredicate) {
  ScopingRule r = SR(
      "sr syn: if //car then replace ftcontains(description, \"low "
      "mileage\") with ftcontains(description, \"few miles\")");
  tpq::Tpq rewritten = ApplyRule(r, Q(kCarQuery));
  int desc = rewritten.FindByTag("description");
  bool has_new = false;
  bool has_old = false;
  for (const auto& kp : rewritten.node(desc).keyword_predicates) {
    if (kp.keyword == "few miles") has_new = true;
    if (kp.keyword == "low mileage") has_old = true;
  }
  EXPECT_TRUE(has_new);
  EXPECT_FALSE(has_old);
}

TEST(SrEncodeTest, DeleteDemotesToOptional) {
  ScopingRule r = SR(
      "sr p3: if //car/description[ftcontains(., \"good condition\")] then "
      "delete ftcontains(description, \"low mileage\")");
  tpq::Tpq encoded = ApplyRuleEncoded(r, Q(kCarQuery));
  int desc = encoded.FindByTag("description");
  ASSERT_EQ(encoded.node(desc).keyword_predicates.size(), 2u);
  bool low_mileage_optional = false;
  for (const auto& kp : encoded.node(desc).keyword_predicates) {
    if (kp.keyword == "low mileage") low_mileage_optional = kp.optional;
  }
  EXPECT_TRUE(low_mileage_optional);
}

TEST(SrEncodeTest, AddAttachesOptional) {
  ScopingRule r = SR(
      "sr p2: if //car then add ftcontains(car, \"american\")");
  tpq::Tpq encoded = ApplyRuleEncoded(r, Q("//car"));
  ASSERT_EQ(encoded.node(0).keyword_predicates.size(), 1u);
  EXPECT_TRUE(encoded.node(0).keyword_predicates[0].optional);
}

TEST(SrEncodeTest, DeleteEdgeMarksSubtreeOptional) {
  ScopingRule r = SR("sr p: if //car then delete pc(car, description)");
  tpq::Tpq encoded = ApplyRuleEncoded(r, Q(kCarQuery));
  int desc = encoded.FindByTag("description");
  ASSERT_GE(desc, 0);
  EXPECT_TRUE(encoded.node(desc).optional);
}

TEST(VorParserTest, EqConstForm) {
  auto v = ParseVor("vor pi1 priority 2: tag=car prefer color = \"Red\"");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->kind, VorKind::kEqConst);
  EXPECT_EQ(v->tag, "car");
  EXPECT_EQ(v->attr, "color");
  EXPECT_EQ(v->const_value, "red");
  EXPECT_EQ(v->priority, 2);
}

TEST(VorParserTest, CompareForms) {
  auto lower = ParseVor("vor pi2: tag=car prefer lower mileage");
  ASSERT_TRUE(lower.ok());
  EXPECT_EQ(lower->kind, VorKind::kCompare);
  EXPECT_TRUE(lower->smaller_preferred);
  auto higher = ParseVor("vor pi3: tag=car same make prefer higher hp");
  ASSERT_TRUE(higher.ok());
  EXPECT_EQ(higher->kind, VorKind::kCompareSameGroup);
  EXPECT_FALSE(higher->smaller_preferred);
  EXPECT_EQ(higher->group_attr, "make");
  EXPECT_EQ(higher->attr, "hp");
}

TEST(VorParserTest, PrefRelChain) {
  auto v = ParseVor(
      "vor colors: tag=car prefer color order \"red\" > \"black\" > "
      "\"white\", \"blue\" > \"green\"");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->kind, VorKind::kPrefRel);
  ASSERT_EQ(v->pref_edges.size(), 3u);
  EXPECT_EQ(v->pref_edges[0], (std::pair<std::string, std::string>{"red",
                                                                   "black"}));
  EXPECT_EQ(v->pref_edges[2],
            (std::pair<std::string, std::string>{"blue", "green"}));
}

TEST(VorParserTest, Errors) {
  EXPECT_FALSE(ParseVor("vor x: tag=car prefer").ok());
  EXPECT_FALSE(ParseVor("vor x tag=car prefer lower m").ok());  // missing ':'
  EXPECT_FALSE(ParseVor("kor x: tag=car prefer lower m").ok());
}

TEST(KorParserTest, Basic) {
  auto k = ParseKor("kor pi4: tag=car prefer ftcontains(\"best bid\")");
  ASSERT_TRUE(k.ok()) << k.status().ToString();
  EXPECT_EQ(k->tag, "car");
  EXPECT_EQ(k->keyword, "best bid");
}

TEST(KorParserTest, NoTagMatchesAll) {
  auto k = ParseKor("kor any: prefer ftcontains(\"urgent\")");
  ASSERT_TRUE(k.ok());
  EXPECT_TRUE(k->tag.empty());
}

TEST(ProfileParserTest, FullProfile) {
  auto p = ParseProfile(R"(
# the Fig. 2 profile
profile figure2
rank K,V,S
sr p1 priority 1: if //car then add ftcontains(car, "clean")
vor pi1: tag=car prefer color = "red"
kor pi4: tag=car prefer ftcontains("best bid")
kor pi5: tag=car prefer ftcontains("NYC")
)");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->name, "figure2");
  EXPECT_EQ(p->rank_order, RankOrder::kKVS);
  EXPECT_EQ(p->scoping_rules.size(), 1u);
  EXPECT_EQ(p->vors.size(), 1u);
  EXPECT_EQ(p->kors.size(), 2u);
}

TEST(ProfileParserTest, RankOrders) {
  EXPECT_EQ(ParseProfile("rank V,K,S")->rank_order, RankOrder::kVKS);
  EXPECT_EQ(ParseProfile("rank S")->rank_order, RankOrder::kS);
  EXPECT_FALSE(ParseProfile("rank Q,Z").ok());
}

TEST(ProfileParserTest, LineContinuation) {
  auto p = ParseProfile(
      "sr long: if //car \\\n then add ftcontains(car, \"x\")");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->scoping_rules.size(), 1u);
}

TEST(ProfileParserTest, UnknownLineFails) {
  EXPECT_FALSE(ParseProfile("frobnicate all the things").ok());
}

TEST(ToStringTest, RulesRoundTripThroughToString) {
  ScopingRule r = SR(
      "sr p1 priority 2: if //car/description[ftcontains(., \"low "
      "mileage\")] then delete ftcontains(car, \"good condition\")");
  // ToString is for diagnostics; check the key pieces are present.
  std::string s = r.ToString();
  EXPECT_NE(s.find("p1"), std::string::npos);
  EXPECT_NE(s.find("delete"), std::string::npos);
  EXPECT_NE(s.find("good condition"), std::string::npos);
}

}  // namespace
}  // namespace pimento::profile
