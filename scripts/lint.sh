#!/usr/bin/env bash
# Banned-pattern lint, run as a tier-1 ctest target (lint_banned_patterns).
#
# Each rule greps for a construct that has bitten this codebase or would
# break a layering invariant. A hit prints the offending lines and fails.
# Extend by appending a `check` call; keep rules grep-able and literal so a
# failure message is self-explanatory.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT" || exit 1

fail=0

# check <description> <extended-regex> <path...> [--exclude-dir=...]
check() {
  desc="$1"; regex="$2"; shift 2
  hits=$(grep -rnE "$regex" "$@" 2>/dev/null)
  if [ -n "$hits" ]; then
    echo "LINT FAIL: $desc"
    echo "$hits"
    echo
    fail=1
  fi
}

# 1. No naked system(): shelling out bypasses the fault injector, the
#    resource governor, and sandboxing assumptions.
check "naked system() call (use in-process APIs)" \
  '(^|[^a-zA-Z0-9_:.])system\(' \
  src bench examples

# 2. Operator::Next() is the engine-internal pull protocol. Outside the
#    algebra layer, consumers must go through Plan::Execute so governor
#    polling, tracing, and stats stay correct.
check "Operator Next() driven outside src/algebra/ (use Plan::Execute)" \
  '(->|\.)Next\(' \
  src --exclude-dir=algebra

# 3. The legacy Search* shims exist for old callers only; new engine code
#    must construct a SearchRequest and call Execute().
check "legacy Search* shim called from src/ (use Execute(SearchRequest))" \
  '(\.|->)(Search|SearchRelaxed|SearchWinnow|SearchPrecompiled)\(' \
  src

# 4. AnalyzeConflicts is the uncompiled O(n·homs) scan; engine/exec code
#    must go through the compiled profile (BuildFlockCompiled /
#    AnalyzeConflictsCompiled) or BuildFlock so the rule index and the
#    precomputed relations are never silently bypassed. The profile layer
#    itself (and tests) legitimately reference the scan path.
check "AnalyzeConflicts called outside src/profile/ (use the compiled path)" \
  '(^|[^a-zA-Z0-9_])AnalyzeConflicts\(' \
  src bench examples --exclude-dir=profile

# 5. Every queue in src/ must be bounded or owned by WorkerPool (whose
#    queue_ honors max_queue and counts rejections). A raw push_back onto a
#    member queue anywhere else is how unbounded-growth overload bugs start;
#    route the work through WorkerPool::Submit or AdmissionController.
check "unbounded queue_.push_back outside WorkerPool (bound it or use Submit)" \
  'queue_\.push_back' \
  src --exclude=worker_pool.cc

# 6. Raw sleeps scatter unbounded, unmockable waits through the codebase.
#    SleepForMs (src/common/backoff.cc) is the one sanctioned sleep
#    primitive: bounded by the backoff policy, greppable, and honored by
#    the decorrelated-jitter retry helpers.
check "raw sleep_for outside the backoff helper (use SleepForMs)" \
  'sleep_for' \
  src bench examples --exclude=backoff.cc --exclude=backoff.h

# 7. common::Mutex / MutexLock / CondVar (src/common/mutex.h) are the one
#    sanctioned locking primitives: they carry the Clang thread-safety
#    capability annotations and the debug lock-rank checker. A raw
#    std::mutex elsewhere in src/ is invisible to both — its fields are
#    unprovable and its acquisitions escape the deadlock hierarchy
#    (DESIGN.md §14). src/common/ is exempt: the wrapper itself owns the
#    underlying std::mutex.
check "raw std:: locking primitive outside src/common/ (use common::Mutex/MutexLock/CondVar)" \
  'std::(mutex|timed_mutex|recursive_mutex|shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|shared_lock|condition_variable)' \
  src --exclude-dir=common

exit $fail
