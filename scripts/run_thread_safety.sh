#!/usr/bin/env bash
# Recompiles the library sources with Clang's Thread Safety Analysis as a
# tier-1 ctest lane (lint_thread_safety): every PIMENTO_GUARDED_BY /
# PIMENTO_REQUIRES / PIMENTO_ACQUIRE annotation (src/common/
# thread_annotations.h, src/common/mutex.h) becomes a compiler-checked
# proof, and any unguarded access to annotated state fails the build.
#
# The analysis is clang-only (the macros are no-ops under gcc), so the lane
# skips with a notice — ctest SKIP_RETURN_CODE 77 — when no clang++ is
# installed; the annotations still travel with the repo and any
# clang-equipped checkout enforces them.
#
# Usage: run_thread_safety.sh [clang++-binary]
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT" || exit 1

CLANG="${1:-}"
if [ -z "$CLANG" ]; then
  CLANG="$(command -v clang++ || true)"
fi
if [ -z "$CLANG" ] || ! "$CLANG" --version >/dev/null 2>&1; then
  echo "SKIP: no clang++ on PATH — thread-safety analysis needs clang" \
       "(annotations are no-ops under this toolchain)"
  exit 77
fi

# -fsyntax-only: we want the analysis verdict, not object files. Only the
# thread-safety groups are promoted to errors so an unrelated warning in a
# newer clang cannot break the lane.
FLAGS=(-fsyntax-only -std=c++20 -I"$ROOT"
       -Wthread-safety -Wthread-safety-beta
       -Werror=thread-safety -Werror=thread-safety-beta)

fail=0
checked=0
for f in "$ROOT"/src/*/*.cc; do
  if ! "$CLANG" "${FLAGS[@]}" "$f"; then
    echo "THREAD-SAFETY FAIL: $f"
    fail=1
  fi
  checked=$((checked + 1))
done
echo "thread-safety analysis: $checked files checked"
exit $fail
