#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over the library
# sources, using the build tree's compile_commands.json. Invoked by the
# lint_clang_tidy ctest target when a clang-tidy binary exists.
#
# Usage: run_clang_tidy.sh <clang-tidy-binary> <build-dir>
set -u

TIDY="${1:?usage: run_clang_tidy.sh <clang-tidy> <build-dir>}"
BUILD="${2:?usage: run_clang_tidy.sh <clang-tidy> <build-dir>}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

if [ ! -f "$BUILD/compile_commands.json" ]; then
  echo "no compile_commands.json in $BUILD (CMAKE_EXPORT_COMPILE_COMMANDS?)"
  exit 1
fi

fail=0
for f in "$ROOT"/src/*/*.cc; do
  if ! "$TIDY" -p "$BUILD" --quiet "$f"; then
    fail=1
  fi
done
exit $fail
