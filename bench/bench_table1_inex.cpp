// Reproduces Table 1: effectiveness of SR + KOR personalization on the
// INEX-like collection. For each topic we run the personalized query per
// requested element type, keep the best 5 answers of each type (as in
// §7.1), and compare the union against the planted assessment:
//   Missed   — relevant components not retrieved (precision column)
//   Out of   — total relevant components in the assessment
//   Retrieved— total components retrieved
//   Instead Of — total relevant (the paper's recall denominator)

#include <algorithm>
#include <cstdio>
#include <set>

#include "src/core/engine.h"
#include "src/data/inex_gen.h"

int main() {
  pimento::data::InexCollection inex = pimento::data::GenerateInex({});
  pimento::core::SearchEngine engine(
      pimento::index::Collection::Build(std::move(inex.doc)));

  std::printf(
      "Table 1 — INEX-like effectiveness (top-5 per requested element "
      "type, personalized with narrative-derived SRs/KORs)\n\n");
  std::printf("%-6s %8s %8s %10s %11s %s\n", "Topic", "Missed", "Out of",
              "Retrieved", "Instead Of", "  (requested types)");

  int total_missed = 0;
  int total_relevant = 0;
  int total_retrieved = 0;
  for (size_t t = 0; t < inex.topics.size(); ++t) {
    const pimento::data::InexTopicSpec& topic = inex.topics[t];
    std::set<pimento::xml::NodeId> retrieved;
    for (const std::string& tag : topic.requested_tags) {
      std::string query = pimento::data::TopicQuery(topic, tag);
      std::string profile = pimento::data::TopicProfile(topic, tag);
      pimento::core::SearchOptions options;
      options.k = 5;
      auto result = engine.Search(query, profile, options);
      if (!result.ok()) {
        std::fprintf(stderr, "topic %d/%s: %s\n", topic.id, tag.c_str(),
                     result.status().ToString().c_str());
        return 1;
      }
      for (const pimento::core::RankedAnswer& a : result->answers) {
        retrieved.insert(a.node);
      }
    }
    const std::vector<pimento::xml::NodeId>& relevant = inex.relevant[t];
    int missed = 0;
    for (pimento::xml::NodeId id : relevant) {
      if (retrieved.count(id) == 0) ++missed;
    }
    std::string types;
    for (const std::string& tag : topic.requested_tags) {
      if (!types.empty()) types += ",";
      types += tag;
    }
    std::printf("%-6d %8d %8zu %10zu %11zu   %s\n", topic.id, missed,
                relevant.size(), retrieved.size(), relevant.size(),
                types.c_str());
    total_missed += missed;
    total_relevant += static_cast<int>(relevant.size());
    total_retrieved += static_cast<int>(retrieved.size());
  }
  std::printf(
      "\ntotals: missed %d of %d relevant; retrieved %d components.\n",
      total_missed, total_relevant, total_retrieved);
  std::printf(
      "expected shape (paper): high precision (few missed), but more "
      "components retrieved than assessed (the marginally-relevant "
      "main-keyword-only components).\n");
  return 0;
}
