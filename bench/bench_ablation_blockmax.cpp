// Ablation F — block-max postings scan: the legacy blind tag scan versus
// the postings-anchored index scan (IndexScanOp), across postings block
// sizes, on selective (rarest-phrase ctf < 1%) and non-selective XMark
// queries. Verifies the two access paths emit bit-identical answers and
// writes BENCH_ablation_blockmax.json.
//
// Usage: bench_ablation_blockmax [output.json] [--smoke]
//   --smoke: small document + 2 runs, for the ctest wiring check. The
//   smoke run asserts that the floor actually skipped blocks on at least
//   one anchored run (with tiny postings blocks so skips are reachable at
//   this scale) and that every access path agreed on the answers.
//   The full run additionally enforces the non-selective regression
//   guard: iscan_speedup >= 0.95 on every non-selective row.

#include <cstdio>
#include <cstring>
#include <iterator>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/algebra/plan.h"
#include "src/data/xmark_gen.h"
#include "src/index/collection.h"
#include "src/plan/planner.h"
#include "src/profile/rule_parser.h"
#include "src/score/scorer.h"
#include "src/tpq/tpq_parser.h"

namespace {

using pimento::bench::MedianMs;

struct Workload {
  const char* name;
  const char* query;
  bool selective;
};

// Selectivity on the generated XMark corpus: "Phoenix" is 1 of 8 cities
// (~0.9% of tokens), the name pair intersects two 1-in-9 name terms;
// "male" covers half the persons (~4%), "Yes" half the business flags.
constexpr Workload kWorkloads[] = {
    {"phoenix", "//person[ftcontains(., \"Phoenix\")]", true},
    {"name_pair",
     "//person[ftcontains(., \"Tempesti\") and ftcontains(., \"Jaak\")]",
     true},
    {"male", "//person[ftcontains(., \"male\")]", false},
    {"business_yes", "//person[.//business[ftcontains(., \"Yes\")]]", false},
};

// The smoke corpus is small, so it gets a tiny block size in the sweep to
// keep floor-driven skips reachable there.
constexpr int kBlockSizes[] = {64, 128, 256};
constexpr int kSmokeBlockSizes[] = {16, 64};

// Pure S ranking with no KORs: that is the regime where the planner wires
// the live k-th-answer floor into the index scan (with K or V ahead of S a
// low-S answer can still win, so no floor is available there).
const char* kProfile =
    "profile ablate\n"
    "rank S\n";

struct Row {
  double ms = 0.0;
  long long scanned = 0;
  long long blocks_skipped = 0;
  long long blocks_visited = 0;
  std::vector<pimento::algebra::Answer> answers;
};

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_ablation_blockmax.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }
  const size_t doc_bytes = smoke ? (256u << 10) : (8u << 20);
  const int runs = smoke ? 2 : 7;

  pimento::data::XmarkOptions gen;
  gen.target_bytes = doc_bytes;
  pimento::index::Collection collection =
      pimento::index::Collection::Build(pimento::data::GenerateXmark(gen));
  pimento::score::Scorer scorer(&collection);
  auto profile = pimento::profile::ParseProfile(kProfile);
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "Ablation F — block-max index scan vs tag scan, XMark %s (ms, median "
      "of %d)\n\n",
      pimento::bench::HumanBytes(doc_bytes).c_str(), runs);
  std::printf("%-14s %6s %6s %10s %10s %10s %9s %10s %10s\n", "query", "sel",
              "block", "tag ms", "auto ms", "iscan ms", "speedup", "skipped",
              "visited");

  bool identical = true;
  bool speedup_ok = true;
  long long total_skipped = 0;
  std::string rows;
  const int* block_sizes = smoke ? kSmokeBlockSizes : kBlockSizes;
  const size_t n_block_sizes = smoke ? std::size(kSmokeBlockSizes)
                                     : std::size(kBlockSizes);
  for (size_t bi = 0; bi < n_block_sizes; ++bi) {
    const int block_size = block_sizes[bi];
    collection.RefinalizeBlocks(block_size);
    for (const Workload& w : kWorkloads) {
      auto query = pimento::tpq::ParseTpq(w.query);
      if (!query.ok()) {
        std::fprintf(stderr, "%s: %s\n", w.name,
                     query.status().ToString().c_str());
        return 1;
      }
      // [0] tag scan baseline, [1] kAuto (cost-gated default),
      // [2] kPostingsScan (anchored path forced).
      const pimento::plan::ScanMode kModes[] = {
          pimento::plan::ScanMode::kTagScan, pimento::plan::ScanMode::kAuto,
          pimento::plan::ScanMode::kPostingsScan};
      Row measured[3];
      for (int mode = 0; mode < 3; ++mode) {
        pimento::plan::PlannerOptions popts;
        popts.k = 10;
        popts.strategy = pimento::plan::Strategy::kPush;
        popts.rank_order = profile->rank_order;
        popts.scan_mode = kModes[mode];
        auto plan =
            pimento::plan::BuildPlan(collection, scorer, *query,
                                     profile->vors, profile->kors, popts);
        if (!plan.ok()) {
          std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
          return 1;
        }
        Row& r = measured[mode];
        r.ms = MedianMs(runs, [&]() {
          plan->Reset();
          r.answers = plan->Execute();
        });
        pimento::algebra::PlanStats stats = plan->CollectStats();
        r.scanned = stats.scanned;
        // Scan-level block skipping plus the galloping intersection
        // cursors' block movement — the same sums the engine exports as
        // pimento_index_blocks_{skipped,visited}_total.
        r.blocks_skipped = stats.blocks_skipped + stats.cursor_blocks_skipped;
        r.blocks_visited = stats.blocks_visited + stats.cursor_blocks_visited;
      }
      total_skipped += measured[2].blocks_skipped;

      for (int mode = 1; mode < 3; ++mode) {
        bool same =
            measured[0].answers.size() == measured[mode].answers.size();
        for (size_t i = 0; same && i < measured[0].answers.size(); ++i) {
          const auto& a = measured[0].answers[i];
          const auto& b = measured[mode].answers[i];
          same = a.node == b.node && a.s == b.s && a.k == b.k;
        }
        if (!same) {
          identical = false;
          std::fprintf(stderr,
                       "FATAL: %s (block %d, mode %d): answers differ from "
                       "the tag scan\n",
                       w.name, block_size, mode);
        }
      }

      double speedup =
          measured[2].ms > 0.0 ? measured[0].ms / measured[2].ms : 0.0;
      // Regression guard (timing, so full runs only): the retuned kAuto
      // cost gate plus the live floor must keep the anchored path within
      // 5% of the tag scan even on non-selective queries.
      if (!smoke && !w.selective && speedup < 0.95) {
        speedup_ok = false;
        std::fprintf(stderr,
                     "FATAL: %s (block %d): non-selective iscan_speedup "
                     "%.2f < 0.95\n",
                     w.name, block_size, speedup);
      }
      std::printf("%-14s %6s %6d %10.2f %10.2f %10.2f %8.2fx %10lld %10lld\n",
                  w.name, w.selective ? "yes" : "no", block_size,
                  measured[0].ms, measured[1].ms, measured[2].ms, speedup,
                  measured[2].blocks_skipped, measured[2].blocks_visited);

      char row[384];
      std::snprintf(
          row, sizeof(row),
          "    {\"query\": \"%s\", \"selective\": %s, \"block_size\": %d, "
          "\"tagscan_ms\": %.3f, \"auto_ms\": %.3f, \"iscan_ms\": %.3f, "
          "\"iscan_speedup\": %.2f, \"iscan_scanned\": %lld, "
          "\"blocks_skipped\": %lld, \"blocks_visited\": %lld}",
          w.name, w.selective ? "true" : "false", block_size, measured[0].ms,
          measured[1].ms, measured[2].ms, speedup, measured[2].scanned,
          measured[2].blocks_skipped, measured[2].blocks_visited);
      if (!rows.empty()) rows += ",\n";
      rows += row;
    }
  }

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"ablation_blockmax\",\n"
               "  \"doc_bytes\": %zu,\n"
               "  \"runs\": %d,\n"
               "  \"results\": [\n%s\n  ],\n"
               "  \"answers_identical\": %s\n"
               "}\n",
               doc_bytes, runs, rows.c_str(), identical ? "true" : "false");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path);
  if (total_skipped <= 0) {
    // At any scale some anchored run must have skipped blocks, otherwise
    // the floor wiring silently died (the exact regression this guard is
    // for: counters pinned at zero while everything still "works").
    std::fprintf(stderr, "FATAL: no run skipped any block\n");
    return 1;
  }
  return identical && speedup_ok ? 0 : 1;
}
