#ifndef PIMENTO_BENCH_XMARK_WORKLOAD_H_
#define PIMENTO_BENCH_XMARK_WORKLOAD_H_

#include <string>

namespace pimento::bench {

/// The Fig. 5 workload: query Q = ad(person, business) &
/// ftcontains(business, "Yes"), plus KORs π1-π4 and VOR π5.
inline const char* kXmarkQuery =
    "//person[.//business[ftcontains(., \"Yes\")]]";

/// A selective companion query ("Phoenix" is 1 of 8 cities, ~0.9% of
/// tokens): its rare anchor passes the kAuto cost gate, so batches mixing
/// it in exercise the postings-anchored index scan and the block-max
/// skip/visit counters alongside the tag-scan regime above.
inline const char* kXmarkSelectiveQuery =
    "//person[ftcontains(., \"Phoenix\")]";

/// Profile text with the first `num_kors` (1..4) keyword ORs of Fig. 5.
/// `with_vor` additionally includes π5 (age = 33 preferred). `weighted`
/// assigns steeply decaying degree-of-interest weights (32/4/2/1), the
/// skewed-contribution regime in which the paper observes early pruning to
/// pay off most (§7.2: "pruning pays the most when the scores contributed
/// by the KORs are [skewed]"; weights are the §8 extension).
inline std::string XmarkProfile(int num_kors, bool with_vor = false,
                                bool weighted = false) {
  static const char* kKors[] = {
      "kor pi1: tag=person prefer ftcontains(\"male\")",
      "kor pi2: tag=person prefer ftcontains(\"United States\")",
      "kor pi3: tag=person prefer ftcontains(\"College\")",
      "kor pi4: tag=person prefer ftcontains(\"Phoenix\")",
  };
  static const char* kWeights[] = {" weight 32", " weight 4", " weight 2",
                                   " weight 1"};
  std::string out = "profile fig5\nrank K,V,S\n";
  for (int i = 0; i < num_kors && i < 4; ++i) {
    out += kKors[i];
    if (weighted) out += kWeights[i];
    out += "\n";
  }
  if (with_vor) {
    out += "vor pi5: tag=person prefer age = \"33\"\n";
  }
  return out;
}

}  // namespace pimento::bench

#endif  // PIMENTO_BENCH_XMARK_WORKLOAD_H_
