// Ablation C: pruning power versus k. Larger top-k lists weaken the
// pruning threshold; the gap between Naive and Push should narrow as k
// grows.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/xmark_workload.h"
#include "src/core/engine.h"
#include "src/data/xmark_gen.h"

namespace {
using pimento::bench::MedianMs;
constexpr int kRuns = 5;
constexpr int kKs[] = {1, 5, 10, 25, 50, 100};
}  // namespace

int main() {
  pimento::data::XmarkOptions gen;
  gen.target_bytes = 4u << 20;
  pimento::core::SearchEngine engine(pimento::index::Collection::Build(
      pimento::data::GenerateXmark(gen)));
  std::string profile = pimento::bench::XmarkProfile(4, false, true);

  std::printf(
      "Ablation C — k sweep, 4MB document, 4 KORs (ms, median of %d)\n\n",
      kRuns);
  std::printf("%-6s %12s %12s %16s\n", "k", "NtpkP", "PtpkP",
              "push pruned");
  for (int k : kKs) {
    double naive_ms = 0;
    double push_ms = 0;
    long long pruned = 0;
    {
      pimento::core::SearchOptions options;
      options.k = k;
      options.strategy = pimento::plan::Strategy::kNaive;
      naive_ms = MedianMs(kRuns, [&]() {
        auto r = engine.Search(pimento::bench::kXmarkQuery, profile, options);
        if (!r.ok()) std::exit(1);
      });
    }
    {
      pimento::core::SearchOptions options;
      options.k = k;
      options.strategy = pimento::plan::Strategy::kPush;
      push_ms = MedianMs(kRuns, [&]() {
        auto r = engine.Search(pimento::bench::kXmarkQuery, profile, options);
        if (!r.ok()) std::exit(1);
        pruned = r->stats.pruned_by_topk;
      });
    }
    std::printf("%-6d %12.2f %12.2f %16lld\n", k, naive_ms, push_ms, pruned);
  }
  std::printf("\nexpected shape: pruning decreases as k grows.\n");
  return 0;
}
