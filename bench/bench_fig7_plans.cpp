// Reproduces Figure 7: run times of the four equivalent plans
// (NtpkP, NS-ILtpkP, S-ILtpkP, PtpkP) for the Fig. 5 query on a 10MB
// document, for 1-4 KORs. Also reports each plan's pruning counts, the
// quantity behind the timing differences.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/xmark_workload.h"
#include "src/core/engine.h"
#include "src/data/xmark_gen.h"

namespace {

using pimento::bench::MedianMs;
using pimento::plan::Strategy;

constexpr int kRuns = 5;
constexpr int kTopK = 10;

struct PlanRow {
  Strategy strategy;
  const char* name;
};

constexpr PlanRow kPlans[] = {
    {Strategy::kNaive, "NtpkP"},
    {Strategy::kInterleave, "NS-ILtpkP"},
    {Strategy::kInterleaveSorted, "S-ILtpkP"},
    {Strategy::kPush, "PtpkP"},
};

}  // namespace

int main() {
  pimento::data::XmarkOptions gen;
  gen.target_bytes = 10u << 20;
  pimento::core::SearchEngine engine(pimento::index::Collection::Build(
      pimento::data::GenerateXmark(gen)));

  std::printf(
      "Figure 7 — plan comparison on a 10MB document (ms, median of %d)\n",
      kRuns);
  std::printf("query: %s   persons=%zu\n\n", pimento::bench::kXmarkQuery,
              engine.collection().tags().Count("person"));
  std::printf("%-10s %12s %12s %12s %12s\n", "plan", "#KORs=1", "#KORs=2",
              "#KORs=3", "#KORs=4");

  for (const PlanRow& plan : kPlans) {
    std::printf("%-10s", plan.name);
    for (int kors = 1; kors <= 4; ++kors) {
      std::string profile =
          pimento::bench::XmarkProfile(kors, false, /*weighted=*/true);
      pimento::core::SearchOptions options;
      options.k = kTopK;
      options.strategy = plan.strategy;
      double ms = MedianMs(kRuns, [&]() {
        auto result = engine.Search(pimento::bench::kXmarkQuery, profile,
                                    options);
        if (!result.ok()) {
          std::fprintf(stderr, "error: %s\n",
                       result.status().ToString().c_str());
          std::exit(1);
        }
      });
      std::printf(" %12.2f", ms);
    }
    std::printf("\n");
  }

  std::printf("\npruning detail (#KORs=4):\n");
  std::printf("%-10s %16s %14s %14s %10s\n", "plan", "pruned_by_topk",
              "kor_consumed", "sorted", "emitted");
  for (const PlanRow& plan : kPlans) {
    pimento::core::SearchOptions options;
    options.k = kTopK;
    options.strategy = plan.strategy;
    auto result = engine.Search(pimento::bench::kXmarkQuery,
                                pimento::bench::XmarkProfile(4, false, true), options);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10s %16lld %14lld %14lld %10lld\n", plan.name,
                static_cast<long long>(result->stats.pruned_by_topk),
                static_cast<long long>(result->stats.kor_consumed),
                static_cast<long long>(result->stats.sorted),
                static_cast<long long>(result->stats.emitted));
  }
  std::printf(
      "\nexpected shape (paper): PtpkP fastest / never worse than NtpkP;"
      " NS-ILtpkP slowest (overhead without batch pruning); S-ILtpkP in "
      "between.\n");
  return 0;
}
