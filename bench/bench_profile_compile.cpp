// Tentpole bench — profile compilation: the per-query flock built by the
// legacy rule scan (BuildFlock: one homomorphism per rule, O(a·n) more for
// conflict arcs) versus the compiled profile (BuildFlockCompiled: rule
// index probe + static certificates + order memo), across profile sizes,
// plus the cold-user lane (loading precomputed relations from the
// ProfileStore versus re-deriving them). Verifies the two flock paths are
// byte-identical on every query and writes BENCH_profile_compile.json.
//
// Usage: bench_profile_compile [output.json] [--smoke]
//   --smoke: small sizes + 3 runs, for the ctest wiring check. The smoke
//   run asserts byte-identical flocks and flock_speedup >= 1.0 on every
//   row. The full run additionally enforces the tentpole acceptance:
//   flock_speedup >= 5 and hom_reduction >= 10 at 256 rules, and the
//   store-load lane beating recompilation.

#include <cstdio>
#include <cstring>
#include <iterator>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/exec/profile_cache.h"
#include "src/exec/profile_store.h"
#include "src/profile/compiled_profile.h"
#include "src/profile/flock.h"
#include "src/profile/rule_parser.h"
#include "src/tpq/containment.h"
#include "src/tpq/tpq_parser.h"

namespace {

using pimento::bench::MedianMs;
namespace profile = pimento::profile;

constexpr int kSizes[] = {16, 64, 256};
constexpr int kSmokeSizes[] = {16, 64};
constexpr int kNumTags = 16;
constexpr int kNumKeywords = 32;

std::string Tag(int i) { return "t" + std::to_string(i % kNumTags); }
std::string Kw(int i) { return "kw" + std::to_string(i % kNumKeywords); }

/// A synthetic population profile: rules spread uniformly over the tag
/// pool (so the rarest-tag buckets stay balanced), a mix of adds, deletes
/// (shadowing other rules' condition terms) and edge relaxations.
/// Priorities are distinct so conflict cycles always resolve — both paths
/// then agree on a flock instead of a kConflict verdict.
std::vector<profile::ScopingRule> MakeRules(int n) {
  std::mt19937 rng(n * 7919 + 17);
  std::vector<profile::ScopingRule> rules;
  rules.reserve(n);
  for (int i = 0; i < n; ++i) {
    const std::string tag = Tag(static_cast<int>(rng() % kNumTags));
    const std::string cond =
        "//" + tag + "[ftcontains(., \"" + Kw(static_cast<int>(rng())) +
        "\")]";
    std::string text =
        "sr r" + std::to_string(i) + " priority " + std::to_string(i) +
        ": if " + cond;
    switch (rng() % 4) {
      case 0:
      case 1:
        text += " then add ftcontains(" + tag + ", \"" +
                Kw(static_cast<int>(rng())) + "\")";
        break;
      case 2:
        text += " then delete ftcontains(" + tag + ", \"" +
                Kw(static_cast<int>(rng())) + "\")";
        break;
      default:
        text += " then replace pc(" + tag + ", " +
                Tag(static_cast<int>(rng())) + ") with ad(" + tag + ", " +
                Tag(static_cast<int>(rng())) + ")";
        break;
    }
    auto rule = profile::ParseScopingRule(text);
    if (!rule.ok()) {
      std::fprintf(stderr, "bad generated rule: %s\n", text.c_str());
      std::abort();
    }
    rules.push_back(*std::move(rule));
  }
  return rules;
}

/// The query mix one user population sends: each query names one or two
/// tags and a couple of keywords, so a handful of rules apply while the
/// index prunes the rest.
std::vector<pimento::tpq::Tpq> MakeQueries(int count, int seed) {
  std::mt19937 rng(seed);
  std::vector<pimento::tpq::Tpq> queries;
  for (int i = 0; i < count; ++i) {
    const std::string text =
        "//" + Tag(static_cast<int>(rng() % kNumTags)) +
        "[ftcontains(., \"" + Kw(static_cast<int>(rng())) +
        "\") and ftcontains(., \"" + Kw(static_cast<int>(rng())) +
        "\") and ./" + Tag(static_cast<int>(rng() % kNumTags)) +
        "[ftcontains(., \"" + Kw(static_cast<int>(rng())) + "\")]]";
    auto q = pimento::tpq::ParseTpq(text);
    if (!q.ok()) {
      std::fprintf(stderr, "bad generated query: %s\n", text.c_str());
      std::abort();
    }
    queries.push_back(*std::move(q));
  }
  return queries;
}

bool FlocksIdentical(const profile::QueryFlock& a,
                     const profile::QueryFlock& b) {
  if (a.members.size() != b.members.size()) return false;
  for (size_t i = 0; i < a.members.size(); ++i) {
    if (a.members[i].ToString() != b.members[i].ToString()) return false;
  }
  return a.applied_rules == b.applied_rules &&
         a.encoded.ToString() == b.encoded.ToString() &&
         a.conflict_report.applicable == b.conflict_report.applicable &&
         a.conflict_report.conflicts == b.conflict_report.conflicts &&
         a.conflict_report.order == b.conflict_report.order;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_profile_compile.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }
  const int runs = smoke ? 3 : 9;
  const int num_queries = smoke ? 16 : 64;
  const int* sizes = smoke ? kSmokeSizes : kSizes;
  const size_t n_sizes = smoke ? std::size(kSmokeSizes) : std::size(kSizes);

  const std::string store_path = std::string(out_path) + ".store";
  std::remove(store_path.c_str());

  std::printf(
      "Profile compilation — scan vs compiled flock build (ms per %d "
      "queries, median of %d)\n\n",
      num_queries, runs);
  std::printf("%-6s %10s %10s %9s %10s %10s %8s %11s %11s %9s\n", "rules",
              "scan ms", "comp ms", "speedup", "scan homs", "comp homs",
              "hom red", "compile ms", "load ms", "load spd");

  bool identical = true;
  bool ok = true;
  std::string rows;
  for (size_t si = 0; si < n_sizes; ++si) {
    const int n = sizes[si];
    std::vector<profile::ScopingRule> rules = MakeRules(n);
    std::vector<pimento::tpq::Tpq> queries = MakeQueries(num_queries, n + 1);

    // Compile lane: the O(n²) derivation a cold user pays without a store.
    profile::CompiledRules compiled;
    const double compile_ms =
        MedianMs(runs, [&]() { compiled = profile::CompileRules(rules); });

    // Byte-identity across the whole query mix, checked before timing.
    for (const pimento::tpq::Tpq& q : queries) {
      auto scan = profile::BuildFlock(q, rules);
      auto fast = profile::BuildFlockCompiled(q, compiled);
      if (scan.ok() != fast.ok() ||
          (scan.ok() && !FlocksIdentical(*scan, *fast))) {
        identical = false;
        std::fprintf(stderr, "FATAL: %d rules, query %s: flocks differ\n", n,
                     q.ToString().c_str());
      }
    }

    // Flock lanes, hom probes counted once over a full untimed pass.
    int64_t probes = pimento::tpq::HomomorphismProbes();
    for (const pimento::tpq::Tpq& q : queries) {
      auto flock = profile::BuildFlock(q, rules);
      (void)flock;
    }
    const int64_t scan_homs = pimento::tpq::HomomorphismProbes() - probes;
    probes = pimento::tpq::HomomorphismProbes();
    for (const pimento::tpq::Tpq& q : queries) {
      auto flock = profile::BuildFlockCompiled(q, compiled);
      (void)flock;
    }
    const int64_t comp_homs = pimento::tpq::HomomorphismProbes() - probes;

    const double scan_ms = MedianMs(runs, [&]() {
      for (const pimento::tpq::Tpq& q : queries) {
        auto flock = profile::BuildFlock(q, rules);
        (void)flock;
      }
    });
    const double comp_ms = MedianMs(runs, [&]() {
      for (const pimento::tpq::Tpq& q : queries) {
        auto flock = profile::BuildFlockCompiled(q, compiled);
        (void)flock;
      }
    });

    // Cold-user lane: relations served by the store versus re-derived.
    double load_ms = 0.0;
    {
      auto store = pimento::exec::ProfileStore::Open(store_path);
      if (!store.ok()) {
        std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
        return 1;
      }
      std::vector<std::string> lines;
      std::vector<uint64_t> hashes;
      for (const profile::ScopingRule& r : rules) {
        lines.push_back(r.ToString());
        hashes.push_back(pimento::exec::ProfileStore::RuleHash(lines.back()));
      }
      const uint64_t profile_hash = static_cast<uint64_t>(n);
      if (!(*store)
               ->Put(profile_hash, profile::kRuleCompilerVersion, lines,
                     profile::SerializeRelations(compiled))
               .ok()) {
        std::fprintf(stderr, "store put failed\n");
        return 1;
      }
      load_ms = MedianMs(runs, [&]() {
        std::string blob;
        if (!(*store)->Get(profile_hash, profile::kRuleCompilerVersion,
                           hashes, &blob)) {
          std::fprintf(stderr, "FATAL: store miss on a just-put profile\n");
          std::abort();
        }
        profile::CompiledRules loaded = profile::CompileRules(rules, blob);
        if (loaded.compile_hom_runs != 0) {
          std::fprintf(stderr, "FATAL: store load still ran homs\n");
          std::abort();
        }
      });
    }

    const double speedup = comp_ms > 0.0 ? scan_ms / comp_ms : 0.0;
    const double hom_red =
        comp_homs > 0 ? static_cast<double>(scan_homs) / comp_homs
                      : static_cast<double>(scan_homs);
    const double load_speedup = load_ms > 0.0 ? compile_ms / load_ms : 0.0;
    std::printf(
        "%-6d %10.3f %10.3f %8.2fx %10lld %10lld %7.1fx %11.3f %11.3f "
        "%8.2fx\n",
        n, scan_ms, comp_ms, speedup, static_cast<long long>(scan_homs),
        static_cast<long long>(comp_homs), hom_red, compile_ms, load_ms,
        load_speedup);

    if (speedup < 1.0) {
      ok = false;
      std::fprintf(stderr, "FATAL: %d rules: flock_speedup %.2f < 1.0\n", n,
                   speedup);
    }
    if (!smoke && n >= 256) {
      if (speedup < 5.0) {
        ok = false;
        std::fprintf(stderr,
                     "FATAL: %d rules: flock_speedup %.2f < 5.0 "
                     "(tentpole acceptance)\n",
                     n, speedup);
      }
      if (hom_red < 10.0) {
        ok = false;
        std::fprintf(stderr,
                     "FATAL: %d rules: hom_reduction %.1f < 10 "
                     "(tentpole acceptance)\n",
                     n, hom_red);
      }
    }
    if (!smoke && load_ms >= compile_ms) {
      ok = false;
      std::fprintf(stderr,
                   "FATAL: %d rules: store load %.3f ms not faster than "
                   "recompilation %.3f ms\n",
                   n, load_ms, compile_ms);
    }

    char row[512];
    std::snprintf(
        row, sizeof(row),
        "    {\"rules\": %d, \"queries\": %d, \"scan_flock_ms\": %.3f, "
        "\"compiled_flock_ms\": %.3f, \"flock_speedup\": %.2f, "
        "\"scan_homs\": %lld, \"compiled_homs\": %lld, "
        "\"hom_reduction\": %.1f, \"compile_ms\": %.3f, "
        "\"store_load_ms\": %.3f, \"store_load_speedup\": %.2f}",
        n, num_queries, scan_ms, comp_ms, speedup,
        static_cast<long long>(scan_homs), static_cast<long long>(comp_homs),
        hom_red, compile_ms, load_ms, load_speedup);
    if (!rows.empty()) rows += ",\n";
    rows += row;
  }
  std::remove(store_path.c_str());

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"profile_compile\",\n"
               "  \"runs\": %d,\n"
               "  \"results\": [\n%s\n  ],\n"
               "  \"flocks_identical\": %s\n"
               "}\n",
               runs, rows.c_str(), identical ? "true" : "false");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path);
  return identical && ok ? 0 : 1;
}
