// Reproduces Figure 6: query time of PushtopKPrune for increasing document
// size (101K ... 10M) and increasing number of KORs (1-4), on the XMark-like
// workload of Fig. 5.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/xmark_workload.h"
#include "src/core/engine.h"
#include "src/data/xmark_gen.h"

namespace {

using pimento::bench::HumanBytes;
using pimento::bench::MedianMs;

constexpr size_t kSizes[] = {101u << 10, 212u << 10, 468u << 10,
                             571u << 10, 823u << 10, 1u << 20,
                             (5u << 20) + (717u << 10), 10u << 20};
constexpr int kRuns = 5;
constexpr int kTopK = 10;

}  // namespace

int main() {
  std::printf(
      "Figure 6 — PushtopKPrune query time (ms, median of %d) vs document "
      "size and #KORs\n",
      kRuns);
  std::printf("query: %s\n\n", pimento::bench::kXmarkQuery);
  std::printf("%-8s %10s %10s %10s %10s %10s\n", "size", "persons",
              "#KORs=1", "#KORs=2", "#KORs=3", "#KORs=4");

  for (size_t size : kSizes) {
    pimento::data::XmarkOptions gen;
    gen.target_bytes = size;
    pimento::core::SearchEngine engine(pimento::index::Collection::Build(
        pimento::data::GenerateXmark(gen)));
    size_t persons = engine.collection().tags().Count("person");

    std::printf("%-8s %10zu", HumanBytes(size).c_str(), persons);
    for (int kors = 1; kors <= 4; ++kors) {
      std::string profile = pimento::bench::XmarkProfile(kors);
      pimento::core::SearchOptions options;
      options.k = kTopK;
      options.strategy = pimento::plan::Strategy::kPush;
      double ms = MedianMs(kRuns, [&]() {
        auto result = engine.Search(pimento::bench::kXmarkQuery, profile,
                                    options);
        if (!result.ok()) {
          std::fprintf(stderr, "error: %s\n",
                       result.status().ToString().c_str());
          std::exit(1);
        }
      });
      std::printf(" %10.2f", ms);
    }
    std::printf("\n");
  }
  std::printf(
      "\nexpected shape (paper): time grows sub-linearly with document size"
      " and mildly with #KORs.\n");
  return 0;
}
