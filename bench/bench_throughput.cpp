// Batch-search throughput on the XMark workload: drives the same request
// mix through SearchEngine::BatchSearch at 1/2/4/8 workers, verifies the
// ranked answers are identical at every worker count, and writes
// BENCH_throughput.json (queries/sec, p50/p99 latency per worker count) so
// the perf trajectory is tracked from PR 1 onward.
//
// A second sweep measures governed execution: every request carries a
// wall-clock budget (--deadline-ms=1,5,20 by default) in degraded mode, and
// the table/JSON report qps, the partial-result rate, and p99 latency per
// budget — how gracefully throughput degrades when callers demand bounded
// latency.
//
// A third sweep measures the distinct-user regime (--users=N, default 32):
// N users with distinct rule-heavy profiles, one request each, through
// three lanes — cold with no store (every profile pays the full O(n²) rule
// compilation), cold with the ProfileStore attached (relations load from
// disk), and warm (pure ProfileCache hits). The JSON reports wall
// time/qps per lane plus the store's hit/miss counters.
//
// A fourth sweep (--overload) measures admission control under sustained
// overload: the same request mix offered at 2x and 4x the configured
// capacity (the admission controller's bounded queue sized to 1/2 and 1/4
// of the batch), with every batch-path fault site armed at 1% (every=100),
// and each request carrying a deadline. The JSON reports shed_rate,
// degraded_rate, and the latency percentiles of *accepted* requests —
// plus an identity check: accepted full-service answers must be
// byte-identical to the unloaded, unfaulted run.
//
// Usage: bench_throughput [--deadline-ms=1,5,20] [--users=N] [--metrics]
//                         [--overload] [output.json] [target_doc_bytes]
// Run from the repo root (or pass a path) so the JSON lands there. With
// --metrics the JSON additionally embeds the engine-wide metrics registry
// snapshot (obs::MetricsRegistry) taken after the sweeps.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/xmark_workload.h"
#include "src/common/fault_injector.h"
#include "src/core/engine.h"
#include "src/data/xmark_gen.h"
#include "src/exec/admission_controller.h"
#include "src/exec/profile_cache.h"
#include "src/exec/profile_store.h"
#include "src/obs/metrics.h"

namespace {

using pimento::core::BatchOptions;
using pimento::core::BatchRequest;
using pimento::core::BatchResult;
using pimento::core::SearchEngine;

constexpr int kWorkerCounts[] = {1, 2, 4, 8};
constexpr int kRepeats = 5;
constexpr int kRequestsPerRepeat = 64;
constexpr int kTopK = 10;

/// The request mix: the Fig. 5 query under the π1..π4 KOR profiles (with
/// and without the VOR and DOI weights) — 8 distinct profile texts cycled
/// over the batch, so the profile cache sees a realistic repeated-user
/// population. Every fourth request swaps in the selective Phoenix query,
/// whose rare anchor passes the kAuto cost gate: the batch then exercises
/// the postings-anchored scan (and its block skip/visit counters), not
/// just the tag-scan regime.
std::vector<BatchRequest> MakeRequests() {
  std::vector<std::string> profiles;
  for (int kors = 1; kors <= 4; ++kors) {
    profiles.push_back(pimento::bench::XmarkProfile(kors));
    profiles.push_back(
        pimento::bench::XmarkProfile(kors, /*with_vor=*/true,
                                     /*weighted=*/true));
  }
  // Half the Phoenix requests carry a plain S-rank profile: the planner
  // wires the live k-th-answer floor there, so the batch also moves the
  // block-skip counter (the KOR-heavy profiles keep K-aware floors, which
  // only validate when the k-th answer maxes out every KOR — rare on this
  // workload).
  const std::string s_profile = "profile plain\nrank S\n";
  std::vector<BatchRequest> requests;
  requests.reserve(kRequestsPerRepeat);
  for (int i = 0; i < kRequestsPerRepeat; ++i) {
    if (i % 4 == 3) {
      requests.push_back({pimento::bench::kXmarkSelectiveQuery,
                          i % 8 == 3 ? s_profile
                                     : profiles[i % profiles.size()],
                          std::nullopt});
    } else {
      requests.push_back({pimento::bench::kXmarkQuery,
                          profiles[i % profiles.size()], std::nullopt});
    }
  }
  return requests;
}

/// Node ids + bit-exact scores of every ranked answer, for cross-worker
/// identity checks.
std::string Fingerprint(const BatchResult& batch) {
  std::string out;
  char buf[64];
  for (const pimento::core::BatchItem& item : batch.items) {
    out += item.status.ToString() + ";";
    for (const pimento::core::RankedAnswer& a : item.result.answers) {
      std::snprintf(buf, sizeof(buf), "%d:%a:%a,", a.node, a.s, a.k);
      out += buf;
    }
    out += "\n";
  }
  return out;
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

/// One user's profile: a shared rule template instantiated with per-user
/// keywords, heavy enough (16 SRs) that the O(n²) rule compilation — the
/// cost the ProfileStore amortizes — is visible per cold user.
std::string UserProfileText(int user) {
  std::string text = "profile user" + std::to_string(user) + "\nrank K,V,S\n";
  for (int r = 0; r < 16; ++r) {
    const std::string kw =
        "u" + std::to_string(user) + "kw" + std::to_string(r);
    if (r % 3 == 0) {
      text += "sr s" + std::to_string(r) + " priority " + std::to_string(r) +
              ": if //person[ftcontains(., \"" + kw +
              "\")] then delete ftcontains(person, \"" + kw + "x\")\n";
    } else {
      text += "sr s" + std::to_string(r) + " priority " + std::to_string(r) +
              ": if //person[ftcontains(., \"" + kw +
              "\")] then add ftcontains(person, \"" + kw + "y\")\n";
    }
  }
  text += "kor pi4: tag=person prefer ftcontains(\"Phoenix\")\n";
  return text;
}

/// Canonical byte rendering of one item's ranked answers (node ids +
/// bit-exact scores), for the overload lane's identity check.
std::string ItemFingerprint(const pimento::core::BatchItem& item) {
  std::string out;
  char buf[64];
  for (const pimento::core::RankedAnswer& a : item.result.answers) {
    std::snprintf(buf, sizeof(buf), "%d:%a:%a,", a.node, a.s, a.k);
    out += buf;
  }
  return out;
}

std::vector<double> ParseDeadlines(const std::string& spec) {
  std::vector<double> out;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    double v = std::strtod(spec.substr(pos, comma - pos).c_str(), nullptr);
    if (v > 0.0) out.push_back(v);
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<double> deadlines = {1.0, 5.0, 20.0};
  bool embed_metrics = false;
  bool overload = false;
  int num_users = 32;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--deadline-ms=", 0) == 0) {
      deadlines = ParseDeadlines(arg.substr(14));
    } else if (arg.rfind("--users=", 0) == 0) {
      num_users = std::atoi(arg.c_str() + 8);
    } else if (arg == "--metrics") {
      embed_metrics = true;
    } else if (arg == "--overload") {
      overload = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  const char* out_path =
      !positional.empty() ? positional[0] : "BENCH_throughput.json";
  size_t doc_bytes = positional.size() > 1
                         ? std::strtoull(positional[1], nullptr, 10)
                         : 1u << 20;

  pimento::data::XmarkOptions gen;
  gen.target_bytes = doc_bytes;
  SearchEngine engine(
      pimento::index::Collection::Build(pimento::data::GenerateXmark(gen)));
  std::vector<BatchRequest> requests = MakeRequests();

  std::printf(
      "throughput — XMark %zu bytes, %zu requests x %d repeats, k=%d\n",
      doc_bytes, requests.size(), kRepeats, kTopK);
  std::printf("%8s %10s %10s %10s %10s %10s\n", "workers", "qps", "p50 ms",
              "p99 ms", "wall ms", "speedup");

  std::string baseline_fp;
  double baseline_qps = 0.0;
  bool identical = true;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  std::string rows;

  // Oversubscribing the pool past the hardware threads only adds context
  // switches to the measurement, so the sweep is clamped; the JSON keeps
  // both the requested and the effective count. Already-measured effective
  // counts are not re-measured.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  int prev_effective = 0;

  for (int requested : kWorkerCounts) {
    int workers = std::min(requested, static_cast<int>(hw));
    if (workers == prev_effective) continue;
    prev_effective = workers;
    BatchOptions options;
    options.num_workers = workers;
    options.search.k = kTopK;

    // One untimed warm-up fills the profile cache so every worker count
    // measures the same steady-state path.
    BatchResult warm = engine.BatchSearch(requests, options);
    if (workers == kWorkerCounts[0]) {
      cache_misses = warm.stats.profile_cache_misses;
    }

    double wall_ms = 0.0;
    std::vector<double> latencies;
    std::string fp;
    for (int r = 0; r < kRepeats; ++r) {
      BatchResult batch = engine.BatchSearch(requests, options);
      wall_ms += batch.stats.wall_ms;
      cache_hits += batch.stats.profile_cache_hits;
      for (const pimento::core::BatchItem& item : batch.items) {
        latencies.push_back(item.elapsed_ms);
      }
      if (r == 0) fp = Fingerprint(batch);
    }
    std::sort(latencies.begin(), latencies.end());

    if (baseline_fp.empty()) {
      baseline_fp = fp;
    } else if (fp != baseline_fp) {
      identical = false;
      std::fprintf(stderr,
                   "FATAL: ranked answers at %d workers differ from the "
                   "1-worker baseline\n",
                   workers);
    }

    double total_queries =
        static_cast<double>(requests.size()) * static_cast<double>(kRepeats);
    double qps = total_queries / (wall_ms / 1000.0);
    double p50 = Percentile(latencies, 0.50);
    double p99 = Percentile(latencies, 0.99);
    if (workers == 1) baseline_qps = qps;
    double speedup = baseline_qps > 0.0 ? qps / baseline_qps : 0.0;

    std::printf("%8d %10.1f %10.3f %10.3f %10.1f %9.2fx\n", workers, qps, p50,
                p99, wall_ms, speedup);

    char row[256];
    std::snprintf(row, sizeof(row),
                  "    {\"requested_workers\": %d, \"workers\": %d, "
                  "\"qps\": %.1f, \"p50_ms\": %.3f, "
                  "\"p99_ms\": %.3f, \"wall_ms\": %.1f, "
                  "\"speedup_vs_1\": %.2f}",
                  requested, workers, qps, p50, p99, wall_ms, speedup);
    if (!rows.empty()) rows += ",\n";
    rows += row;
  }

  // --- governed sweep: bounded-latency execution in degraded mode ---
  //
  // Same request mix, fixed worker count, each request carrying a deadline
  // with allow_partial=true: the engine returns the best-effort ranked
  // prefix it had when the budget fired instead of an error. Reported per
  // budget: throughput, how often results were partial, and p99 latency —
  // which should track the budget, not the query's natural runtime.
  std::string deadline_rows;
  if (!deadlines.empty()) {
    const int workers = std::min(4, static_cast<int>(hw));
    std::printf(
        "\ngoverned (deadline budgets, %d workers, degraded mode)\n",
        workers);
    std::printf("%12s %10s %12s %10s %10s\n", "deadline ms", "qps",
                "partial %", "p50 ms", "p99 ms");
    for (double budget : deadlines) {
      BatchOptions options;
      options.num_workers = workers;
      options.search.k = kTopK;
      options.search.limits.deadline_ms = budget;
      options.search.allow_partial = true;

      engine.BatchSearch(requests, options);  // warm-up
      double wall_ms = 0.0;
      int64_t partials = 0;
      int64_t total = 0;
      std::vector<double> latencies;
      for (int r = 0; r < kRepeats; ++r) {
        BatchResult batch = engine.BatchSearch(requests, options);
        wall_ms += batch.stats.wall_ms;
        for (const pimento::core::BatchItem& item : batch.items) {
          ++total;
          if (item.status.ok() && item.result.partial) ++partials;
          latencies.push_back(item.elapsed_ms);
        }
      }
      std::sort(latencies.begin(), latencies.end());
      double qps = static_cast<double>(total) / (wall_ms / 1000.0);
      double partial_rate =
          total > 0 ? static_cast<double>(partials) / total : 0.0;
      double p50 = Percentile(latencies, 0.50);
      double p99 = Percentile(latencies, 0.99);
      std::printf("%12.1f %10.1f %11.1f%% %10.3f %10.3f\n", budget, qps,
                  100.0 * partial_rate, p50, p99);

      char row[256];
      std::snprintf(row, sizeof(row),
                    "    {\"deadline_ms\": %.1f, \"workers\": %d, "
                    "\"qps\": %.1f, \"partial_rate\": %.3f, "
                    "\"p50_ms\": %.3f, \"p99_ms\": %.3f}",
                    budget, workers, qps, partial_rate, p50, p99);
      if (!deadline_rows.empty()) deadline_rows += ",\n";
      deadline_rows += row;
    }
  }

  // --- distinct-user sweep: profile compilation cold/warm lanes ---
  //
  // N users, one request each, every profile distinct and rule-heavy. Lane
  // 1 (cold, no store) pays the full O(n²) rule compilation per user; lane
  // 2 (cold, store attached) loads the precomputed relations from the
  // ProfileStore the way a freshly restarted process serving a known
  // population would; lane 3 (warm) hits the in-memory ProfileCache.
  std::string users_json;
  if (num_users > 0) {
    const std::string store_path = std::string(out_path) + ".profile_store";
    std::remove(store_path.c_str());
    std::vector<BatchRequest> user_requests;
    user_requests.reserve(num_users);
    for (int u = 0; u < num_users; ++u) {
      user_requests.push_back({u % 4 == 3
                                   ? pimento::bench::kXmarkSelectiveQuery
                                   : pimento::bench::kXmarkQuery,
                               UserProfileText(u), std::nullopt});
    }
    BatchOptions options;
    options.num_workers = std::min(4, static_cast<int>(hw));
    options.search.k = kTopK;

    // Lane 1: cold population, recompilation only.
    engine.profile_cache().Clear();
    double cold_compile_ms = 0.0;
    {
      BatchResult batch = engine.BatchSearch(user_requests, options);
      cold_compile_ms = batch.stats.wall_ms;
    }

    // Populate the store (also verifies attach): one pass re-persists
    // every compiled profile, then the cache is dropped to simulate a
    // process restart with the store file in place.
    if (pimento::Status attached = engine.SetProfileStore(store_path);
        !attached.ok()) {
      std::fprintf(stderr, "%s\n", attached.ToString().c_str());
      return 1;
    }
    engine.profile_cache().Clear();
    engine.BatchSearch(user_requests, options);
    const int64_t persisted = engine.profile_store()->GetStats().appends;

    // Lane 2: cold population, relations from the store.
    engine.profile_cache().Clear();
    double cold_store_ms = 0.0;
    {
      BatchResult batch = engine.BatchSearch(user_requests, options);
      cold_store_ms = batch.stats.wall_ms;
    }
    const pimento::exec::ProfileStore::Stats store_stats =
        engine.profile_store()->GetStats();

    // Lane 3: warm ProfileCache (the steady state the other sweeps run in).
    double warm_ms = 0.0;
    {
      BatchResult batch = engine.BatchSearch(user_requests, options);
      warm_ms = batch.stats.wall_ms;
    }

    const double store_speedup =
        cold_store_ms > 0.0 ? cold_compile_ms / cold_store_ms : 0.0;
    std::printf("\ndistinct users (%d users, %d workers)\n", num_users,
                options.num_workers);
    std::printf("%-22s %12s %8s\n", "lane", "wall ms", "qps");
    std::printf("%-22s %12.1f %8.1f\n", "cold (recompile)", cold_compile_ms,
                num_users / (cold_compile_ms / 1000.0));
    std::printf("%-22s %12.1f %8.1f   (%.2fx vs recompile)\n",
                "cold (profile store)", cold_store_ms,
                num_users / (cold_store_ms / 1000.0), store_speedup);
    std::printf("%-22s %12.1f %8.1f\n", "warm (cache)", warm_ms,
                num_users / (warm_ms / 1000.0));
    if (store_stats.hits < num_users) {
      std::fprintf(stderr,
                   "FATAL: cold-store lane hit the store only %lld/%d times\n",
                   static_cast<long long>(store_stats.hits), num_users);
      identical = false;
    }

    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "  \"users_sweep\": {\"users\": %d, \"workers\": %d, "
        "\"cold_compile_ms\": %.1f, \"cold_store_ms\": %.1f, "
        "\"warm_ms\": %.1f, \"cold_store_speedup\": %.2f, "
        "\"store\": {\"hits\": %lld, \"misses\": %lld, \"appends\": %lld, "
        "\"profiles\": %lld, \"rule_lines\": %lld, "
        "\"dedup_rule_hits\": %lld}},\n",
        num_users, options.num_workers, cold_compile_ms, cold_store_ms,
        warm_ms, store_speedup, static_cast<long long>(store_stats.hits),
        static_cast<long long>(store_stats.misses),
        static_cast<long long>(persisted),
        static_cast<long long>(store_stats.profiles),
        static_cast<long long>(store_stats.rule_lines),
        static_cast<long long>(store_stats.dedup_rule_hits));
    users_json = buf;
    std::remove(store_path.c_str());
  }

  // --- overload sweep: admission control at 2x / 4x sustained capacity ---
  //
  // The admission controller's bounded queue is sized to offered/multiplier,
  // every batch-path fault site fires 1-in-100, and every request carries a
  // deadline. Under that pressure the contract is: overflow is shed with
  // typed kUnavailable + retry_after_ms (never queued to death), survivors
  // keep bounded latency, and accepted full-service answers stay
  // byte-identical to the unloaded run.
  std::string overload_rows;
  if (overload) {
    constexpr double kOverloadDeadlineMs = 100.0;
    constexpr const char* kOverloadSites[] = {
        "exec.worker.dispatch", "cache.profile.fill", "obs.trace.span",
        "exec.scan.next"};
    const int workers = std::min(4, static_cast<int>(hw));
    BatchOptions options;
    options.num_workers = workers;
    options.search.k = kTopK;

    // Per-item unloaded, unfaulted baseline fingerprints.
    std::vector<std::string> unloaded;
    {
      BatchResult base = engine.BatchSearch(requests, options);
      unloaded.reserve(base.items.size());
      for (const pimento::core::BatchItem& item : base.items) {
        unloaded.push_back(ItemFingerprint(item));
      }
    }
    options.search.limits.deadline_ms = kOverloadDeadlineMs;

    std::printf("\noverload (admission control, %d workers, %.0fms deadline, "
                "1%% faults)\n",
                workers, kOverloadDeadlineMs);
    std::printf("%6s %9s %9s %11s %11s %12s %12s\n", "xload", "offered",
                "capacity", "shed %", "degraded %", "acc p50 ms",
                "acc p99 ms");

    for (int multiplier : {2, 4}) {
      const int offered = static_cast<int>(requests.size());
      const int capacity = std::max(1, offered / multiplier);
      pimento::exec::AdmissionConfig cfg;
      cfg.max_queue_depth = capacity;
      cfg.high_watermark = std::max(1, capacity * 3 / 4);
      cfg.low_watermark = capacity / 4;
      cfg.escalate_after = 8;
      cfg.deescalate_after = 8;
      engine.EnableAdmissionControl(cfg);

      for (const char* site : kOverloadSites) {
        pimento::FaultInjector::FaultSpec spec;
        spec.kind = pimento::FaultInjector::Kind::kError;
        spec.code = pimento::StatusCode::kIoError;
        spec.every = 100;  // the 1% armed-fault knob
        pimento::FaultInjector::Instance().Arm(site, spec);
      }

      int64_t accepted = 0, shed = 0, degraded = 0, faulted = 0;
      int64_t identity_mismatches = 0, missing_retry_hint = 0;
      std::vector<double> accepted_latencies;
      for (int r = 0; r < kRepeats; ++r) {
        BatchResult batch = engine.BatchSearch(requests, options);
        for (size_t i = 0; i < batch.items.size(); ++i) {
          const pimento::core::BatchItem& item = batch.items[i];
          if (item.status.ok()) {
            ++accepted;
            accepted_latencies.push_back(item.elapsed_ms);
            if (item.result.degrade_tier !=
                pimento::exec::DegradeTier::kNormal) {
              ++degraded;
            }
            // Identity holds for full-service, non-partial survivors.
            if (!item.result.partial &&
                item.result.degrade_tier ==
                    pimento::exec::DegradeTier::kNormal &&
                ItemFingerprint(item) != unloaded[i]) {
              ++identity_mismatches;
            }
          } else if (item.status.code() ==
                     pimento::StatusCode::kUnavailable) {
            ++shed;
            if (pimento::exec::RetryAfterMsFromStatus(item.status) <= 0) {
              ++missing_retry_hint;
            }
          } else {
            ++faulted;  // the 1% injected faults, typed
          }
        }
      }
      pimento::FaultInjector::Instance().DisarmAll();

      const int64_t total = accepted + shed + faulted;
      const double shed_rate =
          total > 0 ? static_cast<double>(shed) / total : 0.0;
      const double degraded_rate =
          accepted > 0 ? static_cast<double>(degraded) / accepted : 0.0;
      std::sort(accepted_latencies.begin(), accepted_latencies.end());
      const double acc_p50 = Percentile(accepted_latencies, 0.50);
      const double acc_p99 = Percentile(accepted_latencies, 0.99);
      std::printf("%5dx %9d %9d %10.1f%% %10.1f%% %12.3f %12.3f\n",
                  multiplier, offered, capacity, 100.0 * shed_rate,
                  100.0 * degraded_rate, acc_p50, acc_p99);
      if (identity_mismatches > 0) {
        std::fprintf(stderr,
                     "FATAL: %lld accepted full-service answers differ from "
                     "the unloaded run at %dx\n",
                     static_cast<long long>(identity_mismatches), multiplier);
        identical = false;
      }
      if (missing_retry_hint > 0) {
        std::fprintf(stderr,
                     "FATAL: %lld shed requests carried no retry_after_ms "
                     "hint at %dx\n",
                     static_cast<long long>(missing_retry_hint), multiplier);
        identical = false;
      }

      char row[512];
      std::snprintf(
          row, sizeof(row),
          "    {\"multiplier\": %d, \"offered\": %d, \"capacity\": %d, "
          "\"deadline_ms\": %.1f, \"accepted\": %lld, \"shed\": %lld, "
          "\"faulted\": %lld, \"shed_rate\": %.3f, \"degraded_rate\": %.3f, "
          "\"accepted_p50_ms\": %.3f, \"accepted_p99_ms\": %.3f, "
          "\"identity_mismatches\": %lld}",
          multiplier, offered, capacity, kOverloadDeadlineMs,
          static_cast<long long>(accepted), static_cast<long long>(shed),
          static_cast<long long>(faulted), shed_rate, degraded_rate, acc_p50,
          acc_p99, static_cast<long long>(identity_mismatches));
      if (!overload_rows.empty()) overload_rows += ",\n";
      overload_rows += row;
    }
  }

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"batch_search_throughput\",\n"
               "  \"workload\": \"xmark_fig5\",\n"
               "  \"doc_bytes\": %zu,\n"
               "  \"requests_per_batch\": %zu,\n"
               "  \"repeats\": %d,\n"
               "  \"top_k\": %d,\n"
               "  \"hardware_threads\": %u,\n"
               "  \"results\": [\n%s\n  ],\n"
               "  \"deadline_sweep\": [\n%s\n  ],\n"
               "  \"overload_sweep\": [\n%s\n  ],\n"
               "%s"
               "  \"answers_identical_across_worker_counts\": %s,\n"
               "  \"profile_cache\": {\"hits\": %lld, \"misses\": %lld}",
               doc_bytes, requests.size(), kRepeats, kTopK,
               std::thread::hardware_concurrency(), rows.c_str(),
               deadline_rows.c_str(), overload_rows.c_str(),
               users_json.c_str(),
               identical ? "true" : "false",
               static_cast<long long>(cache_hits),
               static_cast<long long>(cache_misses));
  if (embed_metrics) {
    // The engine-wide registry snapshot after the sweeps: request counters,
    // latency histograms, cache/pool/governor counters — one scrape of the
    // whole run.
    std::fprintf(out, ",\n  \"metrics\": %s",
                 pimento::obs::MetricsRegistry::Default().RenderJson().c_str());
  }
  std::fprintf(out, "\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path);
  return identical ? 0 : 1;
}
