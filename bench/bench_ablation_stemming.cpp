// Ablation D (paper §7.1): "when we applied some form of relaxation (like
// stemming, or upper/lower case), the precision decreased" — components
// that merely contain morphological variants of the query keywords start
// outranking genuinely relevant ones. Runs the Table-1 harness twice, with
// the index built without and with Porter stemming, and compares the
// missed counts.

#include <cstdio>
#include <set>

#include "src/core/engine.h"
#include "src/data/inex_gen.h"

namespace {

struct Totals {
  int missed = 0;
  int relevant = 0;
};

Totals RunTopics(const pimento::core::SearchEngine& engine,
                 const pimento::data::InexCollection& inex,
                 int* per_topic_missed) {
  Totals totals;
  for (size_t t = 0; t < inex.topics.size(); ++t) {
    const pimento::data::InexTopicSpec& topic = inex.topics[t];
    std::set<pimento::xml::NodeId> retrieved;
    for (const std::string& tag : topic.requested_tags) {
      auto result = engine.Search(pimento::data::TopicQuery(topic, tag),
                                  pimento::data::TopicProfile(topic, tag),
                                  pimento::core::SearchOptions{.k = 5});
      if (!result.ok()) {
        std::fprintf(stderr, "topic %d: %s\n", topic.id,
                     result.status().ToString().c_str());
        std::exit(1);
      }
      for (const auto& a : result->answers) retrieved.insert(a.node);
    }
    int missed = 0;
    for (pimento::xml::NodeId id : inex.relevant[t]) {
      if (retrieved.count(id) == 0) ++missed;
    }
    per_topic_missed[t] = missed;
    totals.missed += missed;
    totals.relevant += static_cast<int>(inex.relevant[t].size());
  }
  return totals;
}

}  // namespace

int main() {
  std::printf(
      "Ablation D — stemming relaxation vs precision (Table-1 harness)\n\n");
  // The same generated collection indexed twice: exact tokens vs stemmed.
  int missed_exact[8] = {0};
  int missed_stem[8] = {0};
  pimento::data::InexCollection meta = pimento::data::GenerateInex({});

  Totals exact;
  Totals stemmed;
  {
    pimento::data::InexCollection inex = pimento::data::GenerateInex({});
    pimento::core::SearchEngine engine(
        pimento::index::Collection::Build(std::move(inex.doc)));
    exact = RunTopics(engine, inex, missed_exact);
  }
  {
    pimento::data::InexCollection inex = pimento::data::GenerateInex({});
    pimento::text::TokenizeOptions stem;
    stem.stem = true;
    pimento::core::SearchEngine engine(
        pimento::index::Collection::Build(std::move(inex.doc), stem));
    stemmed = RunTopics(engine, inex, missed_stem);
  }

  std::printf("%-6s %14s %14s\n", "Topic", "missed(exact)", "missed(stem)");
  for (size_t t = 0; t < meta.topics.size(); ++t) {
    std::printf("%-6d %14d %14d\n", meta.topics[t].id, missed_exact[t],
                missed_stem[t]);
  }
  std::printf("\ntotals: exact %d/%d missed, stemmed %d/%d missed\n",
              exact.missed, exact.relevant, stemmed.missed,
              stemmed.relevant);
  std::printf(
      "expected shape (paper §7.1): stemming retrieves morphological-"
      "variant decoys, displacing assessed components — precision drops.\n");
  return 0;
}
