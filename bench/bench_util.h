#ifndef PIMENTO_BENCH_BENCH_UTIL_H_
#define PIMENTO_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace pimento::bench {

/// Wall-clock stopwatch for the figure/table harnesses (google-benchmark is
/// used by the micro suite; the reproductions print paper-style rows).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  double ElapsedMs() const {
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(now - start_).count();
  }

  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Median of `runs` timed executions of `fn` (ms).
template <typename Fn>
double MedianMs(int runs, Fn&& fn) {
  std::vector<double> times;
  times.reserve(runs);
  for (int i = 0; i < runs; ++i) {
    WallTimer timer;
    fn();
    times.push_back(timer.ElapsedMs());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

inline std::string HumanBytes(size_t bytes) {
  char buf[32];
  if (bytes >= (10u << 20)) {
    std::snprintf(buf, sizeof(buf), "%.0fM", bytes / 1048576.0);
  } else if (bytes >= (1u << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1fM", bytes / 1048576.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%zuK", bytes >> 10);
  }
  return buf;
}

}  // namespace pimento::bench

#endif  // PIMENTO_BENCH_BENCH_UTIL_H_
