// Ablation A (paper §7.2 closing observation): the order in which KORs are
// applied matters — "applying the KOR which contributes the highest score
// first is beneficial as it increases the pruning threshold". Runs the
// Push plan under the three KOR orders and reports time and pruned counts.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/xmark_workload.h"
#include "src/core/engine.h"
#include "src/data/xmark_gen.h"

namespace {

using pimento::bench::MedianMs;
using pimento::plan::KorOrder;

constexpr int kRuns = 5;

struct OrderRow {
  KorOrder order;
  const char* name;
};

constexpr OrderRow kOrders[] = {
    {KorOrder::kHighestScoreFirst, "highest-first"},
    {KorOrder::kAsGiven, "as-given"},
    {KorOrder::kLowestScoreFirst, "lowest-first"},
};

}  // namespace

int main() {
  pimento::data::XmarkOptions gen;
  gen.target_bytes = 4u << 20;
  pimento::core::SearchEngine engine(pimento::index::Collection::Build(
      pimento::data::GenerateXmark(gen)));
  std::string profile = pimento::bench::XmarkProfile(4, false, true);

  std::printf(
      "Ablation A — KOR application order, Push plan, 4MB document, 4 "
      "KORs (ms, median of %d)\n\n",
      kRuns);
  std::printf("%-15s %10s %16s %14s\n", "kor order", "time",
              "pruned_by_topk", "kor_consumed");
  for (const OrderRow& row : kOrders) {
    pimento::core::SearchOptions options;
    options.k = 10;
    options.strategy = pimento::plan::Strategy::kPush;
    options.kor_order = row.order;
    long long pruned = 0;
    long long kor_consumed = 0;
    double ms = MedianMs(kRuns, [&]() {
      auto result =
          engine.Search(pimento::bench::kXmarkQuery, profile, options);
      if (!result.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     result.status().ToString().c_str());
        std::exit(1);
      }
      pruned = result->stats.pruned_by_topk;
      kor_consumed = result->stats.kor_consumed;
    });
    std::printf("%-15s %10.2f %16lld %14lld\n", row.name, ms, pruned,
                kor_consumed);
  }
  std::printf(
      "\nexpected shape: highest-first raises the pruning threshold "
      "earliest, so its kor operators process the fewest answers.\n");
  return 0;
}
