// Micro-benchmarks (google-benchmark) for the substrate layers: XML
// parsing, index construction, phrase counting, containment checks, and
// topkPrune throughput.

#include <benchmark/benchmark.h>

#include <random>

#include "src/algebra/topk_prune.h"
#include "src/data/car_gen.h"
#include "src/data/xmark_gen.h"
#include "src/index/collection.h"
#include "src/profile/rule_parser.h"
#include "src/tpq/containment.h"
#include "src/tpq/tpq_parser.h"
#include "src/xml/parser.h"
#include "src/xml/serializer.h"

namespace {

std::string XmarkText(size_t bytes) {
  pimento::data::XmarkOptions opts;
  opts.target_bytes = bytes;
  return pimento::xml::SerializeXml(pimento::data::GenerateXmark(opts));
}

void BM_XmlParse(benchmark::State& state) {
  std::string text = XmarkText(static_cast<size_t>(state.range(0)) << 10);
  for (auto _ : state) {
    auto doc = pimento::xml::ParseXml(text);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_XmlParse)->Arg(64)->Arg(512)->Arg(2048);

void BM_IndexBuild(benchmark::State& state) {
  pimento::data::XmarkOptions opts;
  opts.target_bytes = static_cast<size_t>(state.range(0)) << 10;
  for (auto _ : state) {
    state.PauseTiming();
    pimento::xml::Document doc = pimento::data::GenerateXmark(opts);
    state.ResumeTiming();
    auto coll = pimento::index::Collection::Build(std::move(doc));
    benchmark::DoNotOptimize(coll.keywords().total_tokens());
  }
}
BENCHMARK(BM_IndexBuild)->Arg(64)->Arg(512)->Arg(2048);

void BM_PhraseCount(benchmark::State& state) {
  pimento::data::XmarkOptions opts;
  opts.target_bytes = 1u << 20;
  auto coll =
      pimento::index::Collection::Build(pimento::data::GenerateXmark(opts));
  pimento::index::Phrase phrase = coll.MakePhrase("United States");
  const auto& persons = coll.tags().Elements("person");
  for (auto _ : state) {
    int total = 0;
    for (pimento::xml::NodeId p : persons) {
      total += coll.CountOccurrences(p, phrase);
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(persons.size()));
}
BENCHMARK(BM_PhraseCount);

void BM_Containment(benchmark::State& state) {
  auto outer = pimento::tpq::ParseTpq("//car[./price < 2000]");
  auto inner = pimento::tpq::ParseTpq(
      "//car[./price < 1000 and ./description[ftcontains(., \"good "
      "condition\")] and ./color = \"red\"]");
  for (auto _ : state) {
    bool c = pimento::tpq::Contains(*outer, *inner);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_Containment);

void BM_TopkPruneThroughput(benchmark::State& state) {
  pimento::algebra::RankContext rank({}, pimento::profile::RankOrder::kKVS);
  std::vector<pimento::algebra::Answer> input;
  std::mt19937 rng(1);
  std::uniform_real_distribution<double> score(0, 10);
  for (int i = 0; i < 10000; ++i) {
    pimento::algebra::Answer a;
    a.node = i;
    a.s = score(rng);
    a.k = score(rng);
    input.push_back(a);
  }
  for (auto _ : state) {
    pimento::algebra::MaterializedOp src(input);
    pimento::algebra::TopkPruneOptions opts;
    opts.k = static_cast<int>(state.range(0));
    opts.alg = pimento::algebra::PruneAlg::kAlg3;
    pimento::algebra::TopkPruneOp prune(&rank, opts);
    prune.set_input(&src);
    pimento::algebra::Answer a;
    int64_t n = 0;
    while (prune.Next(&a)) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_TopkPruneThroughput)->Arg(10)->Arg(100);

void BM_ProfileParse(benchmark::State& state) {
  const char* text = R"(
profile p
rank K,V,S
sr p1 priority 1: if //car/description[ftcontains(., "low mileage")] then delete ftcontains(car, "good condition")
vor pi1: tag=car prefer color = "red"
kor pi4: tag=car prefer ftcontains("best bid")
)";
  for (auto _ : state) {
    auto p = pimento::profile::ParseProfile(text);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_ProfileParse);

}  // namespace

BENCHMARK_MAIN();
