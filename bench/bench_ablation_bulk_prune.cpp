// Ablation B (paper §6.4): sorted-input bulk pruning. Compares the two
// interleaved plans — with sorting (enabling bulk pruning: a pruned answer
// ends the operator's input) and without — and reports how many answers
// each topkPrune actually consumed.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/xmark_workload.h"
#include "src/algebra/topk_prune.h"
#include "src/core/engine.h"
#include "src/data/xmark_gen.h"
#include "src/plan/planner.h"
#include "src/profile/rule_parser.h"
#include "src/tpq/tpq_parser.h"

namespace {
using pimento::bench::MedianMs;
constexpr int kRuns = 5;
}  // namespace

int main() {
  pimento::data::XmarkOptions gen;
  gen.target_bytes = 4u << 20;
  pimento::index::Collection collection =
      pimento::index::Collection::Build(pimento::data::GenerateXmark(gen));
  pimento::score::Scorer scorer(&collection);
  auto query = pimento::tpq::ParseTpq(pimento::bench::kXmarkQuery);
  auto profile =
      pimento::profile::ParseProfile(
      pimento::bench::XmarkProfile(4, false, /*weighted=*/true));
  if (!query.ok() || !profile.ok()) return 1;

  std::printf(
      "Ablation B — sorted-input bulk pruning, interleaved plans, 4MB "
      "document, 4 KORs (ms, median of %d)\n\n",
      kRuns);
  std::printf("%-12s %10s %22s %16s\n", "plan", "time",
              "consumed_by_prunes", "pruned_by_topk");

  for (bool sorted : {false, true}) {
    pimento::plan::PlannerOptions popts;
    popts.k = 10;
    popts.strategy = sorted ? pimento::plan::Strategy::kInterleaveSorted
                            : pimento::plan::Strategy::kInterleave;
    auto plan = pimento::plan::BuildPlan(collection, scorer, *query,
                                         profile->vors, profile->kors, popts);
    if (!plan.ok()) {
      std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
      return 1;
    }
    double ms = MedianMs(kRuns, [&]() {
      plan->Reset();
      plan->Execute();
    });
    long long consumed = 0;
    long long pruned = 0;
    for (size_t i = 0; i < plan->size(); ++i) {
      if (auto* p =
              dynamic_cast<pimento::algebra::TopkPruneOp*>(plan->op(i))) {
        consumed += p->stats().consumed;
        pruned += p->stats().pruned;
      }
    }
    std::printf("%-12s %10.2f %22lld %16lld\n",
                sorted ? "S-ILtpkP" : "NS-ILtpkP", ms, consumed, pruned);
  }
  std::printf(
      "\nexpected shape: the sorted variant's prunes consume fewer answers"
      " (bulk pruning cuts the stream) at the cost of blocking sorts.\n");
  return 0;
}
