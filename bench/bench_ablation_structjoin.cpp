// Ablation E: access-path comparison — the default tag scan + per-answer
// navigation filters versus the sort-merge structural-join prefilter
// (struct_join.h), on the XMark Fig. 5 workload with a structural branch.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/xmark_workload.h"
#include "src/core/engine.h"
#include "src/data/xmark_gen.h"
#include "src/plan/planner.h"
#include "src/profile/rule_parser.h"
#include "src/tpq/tpq_parser.h"

namespace {
using pimento::bench::MedianMs;
constexpr int kRuns = 5;
}  // namespace

int main() {
  pimento::data::XmarkOptions gen;
  gen.target_bytes = 8u << 20;
  pimento::index::Collection collection =
      pimento::index::Collection::Build(pimento::data::GenerateXmark(gen));
  pimento::score::Scorer scorer(&collection);
  // A query with real structural selectivity: persons with an education
  // entry (only ~2/3 of persons have one) in a named city.
  auto query = pimento::tpq::ParseTpq(
      "//person[./profile/education and .//business[ftcontains(., "
      "\"Yes\")]]");
  auto profile =
      pimento::profile::ParseProfile(pimento::bench::XmarkProfile(2));
  if (!query.ok() || !profile.ok()) return 1;

  std::printf(
      "Ablation E — access path: nav-filter scan vs structural join, 8MB "
      "document (ms, median of %d)\n\n",
      kRuns);
  std::printf("%-22s %10s %14s\n", "access path", "time", "scan output");
  for (bool prefilter : {false, true}) {
    pimento::plan::PlannerOptions popts;
    popts.k = 10;
    popts.strategy = pimento::plan::Strategy::kPush;
    popts.use_structural_prefilter = prefilter;
    auto plan = pimento::plan::BuildPlan(collection, scorer, *query,
                                         profile->vors, profile->kors, popts);
    if (!plan.ok()) {
      std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
      return 1;
    }
    double ms = MedianMs(kRuns, [&]() {
      plan->Reset();
      plan->Execute();
    });
    long long scan_out = plan->op(0)->stats().produced;
    std::printf("%-22s %10.2f %14lld\n",
                prefilter ? "structural join" : "scan + nav filters", ms,
                scan_out);
  }
  std::printf(
      "\nexpected shape: the structural join emits only structurally "
      "matching persons, so downstream operators process fewer answers.\n");
  return 0;
}
